"""Unit tests for the kernel event log."""

import pytest

from repro.metrics.events import Event, EventKind, EventLog
from repro.units import PAGES_PER_HUGE
from tests.test_fault import make_proc


@pytest.fixture
def traced(kernel_thp):
    return kernel_thp, EventLog().attach(kernel_thp)


def test_promotions_and_demotions_traced(traced):
    kernel, log = traced
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    hvpn = vma.start >> 9
    kernel.demote_region(proc, hvpn)
    kernel.promote_region(proc, hvpn)
    assert len(log.of_kind(EventKind.DEMOTION)) == 1
    assert len(log.of_kind(EventKind.PROMOTION)) == 1
    promo = log.of_kind(EventKind.PROMOTION)[0]
    assert promo.process == proc.name
    assert promo.hvpn == hvpn


def test_failed_promotion_not_traced(traced):
    kernel, log = traced
    proc, vma = make_proc(kernel)
    assert kernel.promote_region(proc, vma.start >> 9) is None  # nothing resident
    assert len(log.of_kind(EventKind.PROMOTION)) == 0


def test_madvise_traced(traced):
    kernel, log = traced
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    kernel.madvise_free(proc, vma.start, 10)
    events = log.of_kind(EventKind.MADVISE_FREE)
    assert len(events) == 1
    assert "pages=10" in events[0].detail


def test_queries(traced):
    kernel, log = traced
    a, vma_a = make_proc(kernel)
    a.name = "a"
    b, vma_b = make_proc(kernel)
    b.name = "b"
    for proc, vma in ((a, vma_a), (b, vma_b)):
        kernel.fault(proc, vma.start)
        kernel.demote_region(proc, vma.start >> 9)
        kernel.promote_region(proc, vma.start >> 9)
    kernel.promote_region(a, vma_a.start >> 9)  # fails (already huge)
    assert log.promotions_by_process() == {"a": 1, "b": 1}
    assert all(e.process == "a" for e in log.for_process("a"))
    assert len(log.between(0.0, 1e9)) == len(log)


def test_timeline_buckets():
    log = EventLog()
    for t in (0.0, 10.0, 31.0, 61.0):
        log.events.append(Event(t, EventKind.PROMOTION, "p"))
    assert log.timeline(EventKind.PROMOTION, bucket_seconds=30.0) == {
        0.0: 2, 30.0: 1, 60.0: 1,
    }


def test_capacity_bounded_counts_drops(kernel4k):
    log = EventLog(capacity=2)
    with pytest.warns(RuntimeWarning, match="EventLog full"):
        for _ in range(5):
            log.record(kernel4k, EventKind.OOM, "x")
    assert len(log) == 2
    assert log.dropped == 3
    # the warning fires once, not per dropped event
    log.record(kernel4k, EventKind.OOM, "x")
    assert log.dropped == 4


def test_summary_reports_counts_and_drops(traced):
    kernel, log = traced
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    kernel.madvise_free(proc, vma.start, 10)
    summary = log.summary()
    assert summary["fault_huge"] == 1
    assert summary["madvise_free"] == 1
    assert summary["demotion"] == 1  # partial madvise splits the huge page
    assert summary["dropped"] == 0


def test_eventlog_is_trace_stream_consumer(traced):
    kernel, log = traced
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    (event,) = log.of_kind(EventKind.FAULT_HUGE)
    assert event.process == proc.name
    assert event.hvpn == vma.start >> 9
    # the log rides the shared tracer: same kernel slot, same stream
    assert kernel.trace is not None
    assert len(kernel.trace.events) >= len(log)
