"""Unit tests for the experiment infrastructure."""

import pytest

from repro.experiments import (
    DEFAULT,
    POLICIES,
    Scale,
    fragment,
    gb,
    make_hypervisor,
    make_kernel,
    make_vm,
    rss_bytes,
    scaled_tlb,
    speedup,
    useful_bytes,
)
from repro.units import GB, MB, SEC


def test_scale_bytes_and_rates():
    scale = Scale(1 / 64)
    assert scale.bytes(64 * GB) == 1 * GB
    assert scale.rate(6400.0) == 100.0
    assert DEFAULT.factor == 1 / 64


def test_policy_registry_complete():
    expected = {
        "linux-4kb", "linux-2mb", "freebsd", "ingens-90", "ingens-50",
        "ingens-90-fixed", "ingens-50-fixed",
        "hawkeye-g", "hawkeye-pmu", "hawkeye-4kb",
    }
    assert expected <= set(POLICIES)


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_builds_and_runs(policy):
    kernel = make_kernel(1 * GB, policy, Scale(1 / 16))
    kernel.run_epochs(2)
    assert kernel.stats.epochs == 2


def test_make_kernel_unknown_policy():
    with pytest.raises(KeyError):
        make_kernel(1 * GB, "nonsense")


def test_make_kernel_coarse_epoch_keeps_30s_sampling():
    kernel = make_kernel(1 * GB, "linux-4kb", Scale(1 / 16), epoch_us=2 * SEC)
    assert kernel.config.sample_period == 15


def test_scaled_tlb_shrinks_with_memory():
    tlb = scaled_tlb(Scale(1 / 64))
    assert tlb.l1_base == 1
    assert tlb.l2_shared == 16
    full = scaled_tlb(Scale(1.0))
    assert (full.l1_base, full.l1_huge, full.l2_shared) == (64, 8, 1024)


def test_fragment_helper(kernel4k):
    assert fragment(kernel4k) > 0.9


def test_measurement_helpers(kernel_thp):
    from tests.test_fault import make_proc

    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    assert rss_bytes(proc) == 2 * MB
    # only one page was actually written
    block = proc.page_table.huge[vma.start >> 9].frame
    kernel_thp.frames.write(block, first_nonzero=0)
    assert useful_bytes(kernel_thp, proc) == 4096
    assert speedup(100.0, 50.0) == 2.0
    assert gb(2 * GB) == 2.0


def test_make_hypervisor_and_vm():
    scale = Scale(1 / 256)
    hyp = make_hypervisor(32 * GB, "linux-2mb", scale)
    vm = make_vm(hyp, "v", 8 * GB, "hawkeye-g", scale)
    assert vm.guest.policy.name == "hawkeye-g"
    assert vm.ram_pages == scale.bytes(8 * GB) // 4096
    assert hyp.host.config.tlb.l2_shared == 8  # scaled TLB floor


def test_coarse_epochs_preserve_rates():
    """2 s epochs must not change per-second promotion throughput."""
    from repro.experiments import fragment
    from repro.units import SEC
    from repro.workloads.compute import ComputeWorkload

    def promotions_after(epoch_us, sim_seconds):
        scale = Scale(1 / 128)
        kernel = make_kernel(48 * GB, "linux-2mb", scale, epoch_us=epoch_us)
        fragment(kernel)
        wl = ComputeWorkload("w", footprint_bytes=24 * GB, work_us=1e12,
                             access_rate=10.0, scale=scale.factor)
        kernel.spawn(wl)
        kernel.run_epochs(int(sim_seconds * SEC / epoch_us))
        return kernel.stats.promotions

    fine = promotions_after(SEC, 400)
    coarse = promotions_after(2 * SEC, 400)
    assert coarse == pytest.approx(fine, abs=3)
