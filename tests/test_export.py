"""Tests for metric export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.metrics.events import Event, EventKind, EventLog
from repro.metrics.export import (
    events_to_csv,
    events_to_json,
    series_to_csv,
    series_to_dict,
    snapshot_to_json,
)
from repro.metrics.series import SeriesRecorder, TimeSeries
from tests.conftest import spawn_simple


def test_series_csv_round_trip(kernel4k):
    rec = SeriesRecorder(kernel4k)
    rec.probe("rss", lambda k: sum(p.rss_pages() for p in k.processes))
    rec.probe("free", lambda k: k.buddy.free_pages)
    spawn_simple(kernel4k, heap_mb=4, work_s=2.0)
    kernel4k.run_epochs(4)
    rows = list(csv.DictReader(io.StringIO(series_to_csv(rec))))
    assert len(rows) == 4
    assert float(rows[-1]["rss"]) == 1024.0
    assert {"t_seconds", "rss", "free"} == set(rows[0])


def test_series_csv_empty_recorder(kernel4k):
    rec = SeriesRecorder(kernel4k)
    assert series_to_csv(rec) == "t_seconds\n"


def test_series_to_dict():
    ts = TimeSeries("x")
    ts.append(1.0, 2.0)
    assert series_to_dict(ts) == {"name": "x", "times": [1.0], "values": [2.0]}


def test_events_json_and_csv():
    log = EventLog()
    log.events.append(Event(1.5, EventKind.PROMOTION, "p", 42, "cost=25us"))
    log.events.append(Event(2.0, EventKind.OOM, "q"))
    parsed = json.loads(events_to_json(log))
    assert parsed[0] == {"t_seconds": 1.5, "kind": "promotion",
                         "process": "p", "hvpn": 42, "detail": "cost=25us"}
    rows = list(csv.DictReader(io.StringIO(events_to_csv(log))))
    assert rows[1]["kind"] == "oom"
    assert rows[1]["hvpn"] == ""


def test_snapshot_json(kernel_thp):
    doc = json.loads(snapshot_to_json(kernel_thp))
    assert doc["meminfo_kb"]["MemTotal"] > 0
    assert "pgfault" in doc["vmstat"]
