"""Tests for metric export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.metrics.events import Event, EventKind, EventLog
from repro.metrics.export import (
    events_to_csv,
    events_to_json,
    series_to_csv,
    series_to_dict,
    snapshot_to_json,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.metrics.series import SeriesRecorder, TimeSeries
from repro.trace import TraceEvent, TraceKind
from tests.conftest import spawn_simple


def test_series_csv_round_trip(kernel4k):
    rec = SeriesRecorder(kernel4k)
    rec.probe("rss", lambda k: sum(p.rss_pages() for p in k.processes))
    rec.probe("free", lambda k: k.buddy.free_pages)
    spawn_simple(kernel4k, heap_mb=4, work_s=2.0)
    kernel4k.run_epochs(4)
    rows = list(csv.DictReader(io.StringIO(series_to_csv(rec))))
    assert len(rows) == 4
    assert float(rows[-1]["rss"]) == 1024.0
    assert {"t_seconds", "rss", "free"} == set(rows[0])


def test_series_csv_empty_recorder(kernel4k):
    rec = SeriesRecorder(kernel4k)
    assert series_to_csv(rec) == "t_seconds\n"


def test_series_to_dict():
    ts = TimeSeries("x")
    ts.append(1.0, 2.0)
    assert series_to_dict(ts) == {"name": "x", "times": [1.0], "values": [2.0]}


def test_events_json_and_csv():
    log = EventLog()
    log.events.append(Event(1.5, EventKind.PROMOTION, "p", 42, "cost=25us"))
    log.events.append(Event(2.0, EventKind.OOM, "q"))
    parsed = json.loads(events_to_json(log))
    assert parsed[0] == {"t_seconds": 1.5, "kind": "promotion",
                         "process": "p", "hvpn": 42, "detail": "cost=25us"}
    rows = list(csv.DictReader(io.StringIO(events_to_csv(log))))
    assert rows[1]["kind"] == "oom"
    assert rows[1]["hvpn"] == ""


def test_series_csv_aligns_ragged_series_by_timestamp(kernel4k):
    rec = SeriesRecorder(kernel4k)
    rec.probe("free", lambda k: k.buddy.free_pages)
    kernel4k.run_epochs(2)
    # A probe added mid-run has no samples for the early epochs; rows must
    # align by *timestamp*, not by index, leaving the early cells blank.
    rec.probe("epochs", lambda k: k.stats.epochs)
    kernel4k.run_epochs(2)
    rows = list(csv.DictReader(io.StringIO(series_to_csv(rec))))
    assert len(rows) == 4
    assert [r["epochs"] for r in rows[:2]] == ["", ""]
    assert float(rows[2]["epochs"]) == 3.0
    assert float(rows[3]["epochs"]) == 4.0
    # every row keeps the full-history series' value at its own timestamp
    times = [float(r["t_seconds"]) for r in rows]
    assert times == sorted(times)
    assert all(r["free"] != "" for r in rows)


def test_trace_jsonl_round_trip():
    events = [
        TraceEvent(1.5, TraceKind.FAULT_BASE, "p", 4.25, 42),
        TraceEvent(2.0, TraceKind.OOM, "kernel", 0.0, None, "allocated=1.00"),
    ]
    text = trace_to_jsonl(events)
    lines = text.splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"t_us": 1.5, "kind": "fault.base", "process": "p",
                     "span_us": 4.25, "page": 42}
    assert trace_from_jsonl(text) == events
    assert trace_from_jsonl(text + "\n\n") == events  # blank lines skipped
    assert trace_from_jsonl("") == []


def test_snapshot_json(kernel_thp):
    doc = json.loads(snapshot_to_json(kernel_thp))
    assert doc["meminfo_kb"]["MemTotal"] > 0
    assert "pgfault" in doc["vmstat"]


def test_cells_jsonl_and_csv():
    from repro.metrics.export import cells_to_csv, cells_to_jsonl

    records = [
        {"cell_id": "smoke/touch:linux-4kb@128", "experiment": "smoke",
         "case": "touch", "policy": "linux-4kb", "scale_denominator": 128,
         "status": "ok", "attempts": 1, "wall_s": 0.5, "key": "abc",
         "result": {"faults": 8}},
        {"cell_id": "smoke/touch:linux-2mb@128", "experiment": "smoke",
         "case": "touch", "policy": "linux-2mb", "scale_denominator": 128,
         "status": "failed", "attempts": 2, "wall_s": 0.1, "key": "def",
         "error": "boom"},
    ]
    lines = cells_to_jsonl(records).splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["result"] == {"faults": 8}
    assert json.loads(lines[1])["error"] == "boom"
    assert cells_to_jsonl([]) == ""

    csv_text = cells_to_csv(records)
    rows = list(csv.DictReader(io.StringIO(csv_text)))
    header = csv_text.splitlines()[0].split(",")
    # stable layout: identity columns first (cell_id leading), then one
    # labeled column per flattened result metric, sorted by name.
    assert header[:4] == ["cell_id", "experiment", "case", "policy"]
    metric_columns = [c for c in header if c.startswith("result.")]
    assert metric_columns == sorted(metric_columns)
    assert "result.faults" in header
    assert rows[0]["result.faults"] == "8.0"
    assert rows[1]["result.faults"] == ""  # failed cell: padded, not ragged
    assert rows[1]["error"] == "boom"


def test_cells_csv_flattens_nested_and_sorts_metric_union():
    from repro.metrics.export import cells_to_csv

    records = [
        {"cell_id": "a", "status": "ok",
         "result": {"times_s": {"zip": 2.0}, "rss_series": [1, 2, 3]}},
        {"cell_id": "b", "status": "ok", "result": {"faults": 4}},
    ]
    header = cells_to_csv(records).splitlines()[0].split(",")
    metric_columns = [c for c in header if c.startswith("result.")]
    # union across records, nested keys dotted, lists as .len counts
    assert metric_columns == ["result.faults", "result.rss_series.len",
                              "result.times_s.zip"]


def test_trace_to_chrome():
    from repro.metrics.export import trace_to_chrome

    events = [
        TraceEvent(10.0, TraceKind.FAULT_BASE, "redis", 4.25, 42),
        TraceEvent(20.0, TraceKind.PROMOTE_COLLAPSE, "redis", 30.0, 7),
        TraceEvent(25.0, TraceKind.BLOAT_SCAN, "kernel", 0.0, None, "n=3"),
    ]
    doc = json.loads(trace_to_chrome(events))
    assert doc["displayTimeUnit"] == "ms"
    records = doc["traceEvents"]
    meta = [r for r in records if r["ph"] == "M"]
    # one process_name per process, one thread_name per (process, subsystem)
    names = {(r["name"], r["args"]["name"]) for r in meta}
    assert ("process_name", "redis") in names
    assert ("process_name", "kernel") in names
    assert ("thread_name", "fault") in names
    assert ("thread_name", "promote") in names
    assert ("thread_name", "bloat") in names
    slices = [r for r in records if r["ph"] == "X"]
    assert len(slices) == 2
    fault = next(r for r in slices if r["name"] == "fault.base")
    assert fault["ts"] == 10.0 and fault["dur"] == 4.25
    assert fault["args"]["page"] == 42
    instants = [r for r in records if r["ph"] == "i"]
    assert len(instants) == 1 and instants[0]["s"] == "t"
    # distinct processes get distinct pids; subsystems get stable tids
    pids = {r["pid"] for r in records if r["ph"] != "M"}
    assert len(pids) == 2
