"""Unit tests for the page-fault path."""

import pytest

from repro.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.vma import VMAKind
from tests.conftest import small_config


def make_proc(kernel, nbytes=8 * MB, kind=VMAKind.ANON):
    from repro.vm.process import Process

    proc = Process("t")
    kernel.processes.append(proc)
    from repro.tlb.perf import PMUCounters

    kernel.pmu[proc.pid] = PMUCounters()
    vma = kernel.mmap(proc, nbytes, "heap", kind)
    return proc, vma


def test_base_fault_maps_and_charges(kernel4k):
    proc, vma = make_proc(kernel4k)
    latency = kernel4k.fault(proc, vma.start)
    assert latency == pytest.approx(3.5)  # sync zeroing baseline
    assert proc.page_table.is_mapped(vma.start)
    assert proc.stats.faults == 1
    assert proc.region(vma.start >> 9).resident == 1


def test_repeat_fault_free(kernel4k):
    proc, vma = make_proc(kernel4k)
    kernel4k.fault(proc, vma.start)
    assert kernel4k.fault(proc, vma.start) == 0.0
    assert proc.stats.faults == 1


def test_thp_maps_huge_at_first_fault(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    latency = kernel_thp.fault(proc, vma.start + 7)
    assert latency == pytest.approx(465.0)  # huge fault with sync zeroing
    assert proc.stats.huge_faults == 1
    region = proc.region(vma.start >> 9)
    assert region.is_huge
    assert region.resident == PAGES_PER_HUGE
    # every page of the region is now mapped
    assert proc.page_table.is_mapped(vma.start + 100)


def test_thp_falls_back_to_base_when_fragmented(kernel_thp):
    kernel_thp.fragmenter.fragment(keep_fraction=0.05)
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    assert proc.stats.huge_faults == 0
    assert proc.stats.faults == 1


def test_thp_no_huge_fault_when_vma_smaller_than_region(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=1 * MB)  # 256 pages < 512
    kernel_thp.fault(proc, vma.start)
    assert proc.stats.huge_faults == 0


def test_file_backed_fault_skips_zeroing(kernel4k):
    proc, vma = make_proc(kernel4k, kind=VMAKind.FILE)
    latency = kernel4k.fault(proc, vma.start)
    assert latency == pytest.approx(2.65)


def test_hawkeye_skips_zeroing_for_prezeroed_frames(kernel_hawkeye):
    proc, vma = make_proc(kernel_hawkeye)
    latency = kernel_hawkeye.fault(proc, vma.start)
    assert latency == pytest.approx(13.0)  # boot memory is pre-zeroed


def test_cow_break_on_shared_zero(kernel_hawkeye):
    proc, vma = make_proc(kernel_hawkeye)
    pte = proc.page_table.map_base(vma.start, kernel_hawkeye.zero_registry.zero_frame,
                                   shared_zero=True)
    kernel_hawkeye.zero_registry.share()
    latency = kernel_hawkeye.fault(proc, vma.start)
    assert latency == pytest.approx(kernel_hawkeye.costs.cow_fault_us)
    assert not pte.shared_zero
    assert proc.stats.cow_faults == 1
    assert kernel_hawkeye.zero_registry.cow_faults == 1


def test_oom_raised_when_memory_exhausted():
    kernel = Kernel(small_config(mem_mb=4), Linux4KPolicy)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    with pytest.raises(OutOfMemoryError):
        for vpn in range(vma.start, vma.end):
            kernel.fault(proc, vpn)
    assert kernel.stats.oom_kills == 1


def test_fault_outside_vma_raises(kernel4k):
    proc, vma = make_proc(kernel4k)
    from repro.errors import InvalidAddressError

    with pytest.raises(InvalidAddressError):
        kernel4k.fault(proc, vma.end + 10_000)
