"""Unit tests for the batched fault fast path and its supporting layers."""

import math

import numpy as np
import pytest

from repro.errors import InvalidAddressError
from repro.experiments import POLICIES, Scale
from repro.kernel.kernel import Kernel, KernelConfig
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameTable
from repro.units import MB
from repro.vm.page_table import PageTable
from repro.vm.process import Process
from repro.workloads.base import ContentSpec, FreeOp, Phase, Workload


# ---------------------------------------------------------------------- #
# buddy: bulk extent allocation                                           #
# ---------------------------------------------------------------------- #


def make_buddy(num_frames=4096):
    frames = FrameTable(num_frames)
    return frames, BuddyAllocator(frames)


def test_extent_consumes_uniform_block_wholesale():
    _, buddy = make_buddy(1024)
    got = buddy.try_alloc_run_extent(1024)
    assert got == (0, 1024, True)
    assert buddy.free_pages == 0


def test_extent_matches_scalar_frame_sequence():
    """The bulk extents hand out exactly the frames scalar allocs would."""
    _, buddy_a = make_buddy(512)
    _, buddy_b = make_buddy(512)
    scalar = [buddy_a.try_alloc(0)[0] for _ in range(300)]
    bulk = []
    for start, count, _ in buddy_b.try_alloc_run(300):
        bulk.extend(range(start, start + count))
    assert bulk == scalar


def test_partial_extent_reinserts_identical_remainder():
    """Stopping mid-block leaves the same free lists as scalar allocs."""
    _, buddy_a = make_buddy(256)
    _, buddy_b = make_buddy(256)
    for _ in range(37):
        buddy_a.try_alloc(0)
    buddy_b.try_alloc_run(37)
    for order in range(buddy_a.max_order + 1):
        assert list(buddy_a._zero[order]) == list(buddy_b._zero[order])
        assert list(buddy_a._nonzero[order]) == list(buddy_b._nonzero[order])
    assert buddy_a.free_pages == buddy_b.free_pages


def test_mixed_content_block_falls_back_to_single_page():
    """A non-uniform block cannot be drained in one extent."""
    frames, buddy = make_buddy(8)
    run = buddy.try_alloc_run(8)
    frames.write(1, first_nonzero=3)  # frame 1 non-zero, rest zero
    buddy.free_range(0, 8)            # one order-3 block, mixed content
    got = buddy.try_alloc_run_extent(8, prefer_zero=False)
    assert got[1] == 1, "mixed block must degrade to a scalar single-page alloc"


def test_run_dry_allocator_returns_short():
    _, buddy = make_buddy(16)
    extents = buddy.try_alloc_run(64)
    assert sum(c for _, c, _ in extents) == 16
    assert buddy.try_alloc_run_extent(1) is None


# ---------------------------------------------------------------------- #
# frames: vectorised content writes                                       #
# ---------------------------------------------------------------------- #


def test_write_range_mints_ascending_tags():
    ft = FrameTable(64)
    before = ft._next_tag
    ft.write_range(4, 5, first_nonzero=9)
    assert list(ft.content_tag[4:9]) == list(range(before, before + 5))
    assert (ft.first_nonzero[4:9] == 9).all()
    ft2 = FrameTable(64)
    for f in range(4, 9):
        ft2.write(f, first_nonzero=9)
    assert np.array_equal(ft.content_tag, ft2.content_tag)
    assert np.array_equal(ft.first_nonzero, ft2.first_nonzero)


def test_write_frames_matches_scalar_writes():
    ft, ft2 = FrameTable(64), FrameTable(64)
    frames = [3, 9, 4, 50]
    ft.write_frames(frames, first_nonzero=7)
    for f in frames:
        ft2.write(f, first_nonzero=7)
    assert np.array_equal(ft.content_tag, ft2.content_tag)
    assert np.array_equal(ft.first_nonzero, ft2.first_nonzero)


def test_write_range_shared_tag():
    ft = FrameTable(64)
    ft.write_range(0, 4, first_nonzero=1, tag=77)
    assert (ft.content_tag[0:4] == 77).all()


# ---------------------------------------------------------------------- #
# page table: range mapping and the demotion dirty bit                    #
# ---------------------------------------------------------------------- #


def test_map_base_range_rejects_base_overlap():
    pt = PageTable()
    pt.map_base(5, 100)
    with pytest.raises(InvalidAddressError):
        pt.map_base_range(3, [(0, 4, True)])


def test_map_base_range_rejects_huge_overlap():
    pt = PageTable()
    pt.map_huge(1, 0)
    with pytest.raises(InvalidAddressError):
        pt.map_base_range(510, [(1024, 4, True)])


def test_map_base_range_installs_extent_frames():
    pt = PageTable()
    assert pt.map_base_range(10, [(100, 3, True), (200, 2, False)], accessed=True) == 5
    assert [pt.base[10 + i].frame for i in range(5)] == [100, 101, 102, 200, 201]
    assert all(pt.base[10 + i].accessed for i in range(5))


def test_demote_preserves_dirty_and_accessed_bits():
    pt = PageTable()
    huge_pte = pt.map_huge(2, 512)
    huge_pte.accessed = True
    huge_pte.dirty = True
    created = pt.demote_huge(2)
    assert len(created) == 512
    assert all(pte.dirty for _, pte in created)
    assert all(pte.accessed for _, pte in created)


# ---------------------------------------------------------------------- #
# kernel: fault_range semantics                                           #
# ---------------------------------------------------------------------- #


class _Idle(Workload):
    name = "unit"

    def build_phases(self):
        return [Phase("idle", duration_us=1.0)]


def build_kernel(policy="linux-4kb", batched=True, mem_mb=32, heap_mb=16):
    Process._next_pid = 1
    kernel = Kernel(KernelConfig(mem_bytes=mem_mb * MB), POLICIES[policy](Scale(1 / 128)))
    kernel.batched_faults = batched
    run = kernel.spawn(_Idle())
    proc = run.proc
    kernel.mmap(proc, heap_mb * MB, "heap")
    vma = kernel.find_vma(proc, "heap")
    return kernel, proc, vma


def test_fault_range_counts_and_stats():
    kernel, proc, vma = build_kernel()
    consumed, pages = kernel.fault_range(proc, vma.start, 1000)
    assert pages == 1000
    assert proc.stats.faults == 1000
    assert kernel.stats.faults == 1000
    assert consumed == pytest.approx(proc.stats.fault_time_us)
    # Re-touching is free (already mapped) but still counts the pages.
    consumed2, pages2 = kernel.fault_range(proc, vma.start, 1000)
    assert (consumed2, pages2) == (0.0, 1000)


def test_fault_range_budget_stop_matches_scalar():
    """A mid-gap budget stops both paths after the same page count."""
    budget = 100.0  # 100 / 2.65 = 37.7 pages: nowhere near a float boundary
    kernel, proc, vma = build_kernel(batched=True)
    _, pages = kernel.fault_range(proc, vma.start, 2000, budget_us=budget)
    ks, ps, vs = build_kernel(batched=False)
    consumed = 0.0
    scalar_pages = 0
    while scalar_pages < 2000 and consumed < budget:
        consumed += ks.fault(ps, vs.start + scalar_pages)
        scalar_pages += 1
    assert pages == scalar_pages
    assert len(proc.page_table.base) == len(ps.page_table.base)


def test_fault_range_pacing_dominates_budget():
    """With pace > fault cost, pages per budget follow the pacing rate."""
    kernel, proc, vma = build_kernel()
    consumed, pages = kernel.fault_range(
        proc, vma.start, 2000, budget_us=100.0, pace_us=10.0
    )
    assert pages == 10
    assert consumed == pytest.approx(100.0)
    # Fault-time stats charge only the fault cost, not the pacing.
    assert proc.stats.fault_time_us < consumed


def test_fault_range_work_adds_to_budget_drain():
    kernel, proc, vma = build_kernel()
    # Already-mapped pages drain max(work, pace) per page.
    kernel.fault_range(proc, vma.start, 100)
    consumed, pages = kernel.fault_range(
        proc, vma.start, 100, budget_us=50.0, work_us=1.0
    )
    assert pages == 50
    assert consumed == pytest.approx(50.0)


def test_exit_process_uses_direct_run_lookup():
    kernel, proc, vma = build_kernel()
    boot_allocated = kernel.buddy.allocated_pages  # the canonical zero frame
    kernel.fault_range(proc, vma.start, 256)
    run = kernel._run_by_pid[proc.pid]
    kernel.exit_process(proc)
    assert run.finished
    assert proc.pid not in kernel._run_by_pid
    assert kernel.buddy.allocated_pages == boot_allocated


def test_freeop_reuses_seeded_rng():
    kernel, proc, vma = build_kernel()
    kernel.fault_range(proc, vma.start, 1024)
    op = FreeOp("heap", npages=1024, sparse_fraction=0.5, seed=3)
    run = kernel._run_by_pid[proc.pid]
    op.execute(kernel, run, math.inf)
    rng = op._rng
    assert rng is not None
    left = len(proc.page_table.base)
    kernel.fault_range(proc, vma.start, 1024)
    op.execute(kernel, run, math.inf)
    assert op._rng is rng, "the op must reuse one RNG instance across runs"
    assert len(proc.page_table.base) == left, "re-seeded RNG frees the same subset"


def test_batched_madvise_matches_scalar_unmap():
    kb, pb, vb = build_kernel(batched=True)
    ks, ps, vs = build_kernel(batched=False)
    for kernel, proc, vma in ((kb, pb, vb), (ks, ps, vs)):
        for vpn in range(vma.start, vma.start + 900):
            kernel.fault(proc, vpn)
        kernel.madvise_free(proc, vma.start + 100, 600)
    assert sorted(pb.page_table.base) == sorted(ps.page_table.base)
    for order in range(kb.buddy.max_order + 1):
        assert list(kb.buddy._zero[order]) == list(ks.buddy._zero[order])
        assert list(kb.buddy._nonzero[order]) == list(ks.buddy._nonzero[order])
    assert np.array_equal(kb.frames.allocated, ks.frames.allocated)


# ---------------------------------------------------------------------- #
# perf harness                                                            #
# ---------------------------------------------------------------------- #


def test_check_regression_flags_speedup_drop():
    from repro.perf import check_regression

    baseline = {"speedup": 4.0}
    assert check_regression({"speedup": 3.9}, baseline) == []
    assert check_regression({"speedup": 3.1}, baseline) == []  # within 25%
    failures = check_regression({"speedup": 2.9}, baseline)
    assert failures and "speedup" in failures[0]


def test_touch_benchmark_smoke():
    from repro.perf import format_touch_report, touch_benchmark

    result = touch_benchmark(npages=1024, repeats=1)
    assert result["pages"] == 2048
    assert result["batched_s"] > 0 and result["scalar_s"] > 0
    assert "speedup" in format_touch_report(result)


def test_cli_bench_accepts_touch_target():
    from repro.cli import build_parser

    args = build_parser().parse_args(["bench"])
    assert args.target == "touch"
    args = build_parser().parse_args(
        ["bench", "touch", "--json", "--check", "b.json"]
    )
    assert args.json and args.check == "b.json"
    args = build_parser().parse_args(["bench", "tab1", "--profile"])
    assert args.target == "tab1" and args.profile
