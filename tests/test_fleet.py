"""Fleet subsystem tests: arrivals, OOM killer, churn manager, QoS.

Covers the directed acceptance properties of the fleet experiment:
badness ordering and protected-tenant grace in the OOM killer, the
kill-accounting invariant (total kills == tenant exits attributed to
OOM), deterministic cells, and the zero-cost contract (no fleet key in
telemetry artifacts when no fleet is attached).
"""

import json
import random

import pytest

from repro.experiments import Scale, make_kernel
from repro.fleet import (
    DEFAULT_CLASSES,
    FleetManager,
    FleetSpec,
    OOMKiller,
    PoissonArrivals,
    TenantClass,
    TraceArrivals,
)
from repro.fleet.experiment import run_fleet_smoke
from repro.fleet.tenants import pick_class
from repro.mem.watermarks import Watermarks
from repro.units import GB, MB, SEC


# --------------------------------------------------------------------- #
# arrival models                                                         #
# --------------------------------------------------------------------- #


def test_poisson_arrivals_deterministic_and_increasing():
    a = PoissonArrivals(2.0, random.Random(42))
    b = PoissonArrivals(2.0, random.Random(42))
    ta = tb = 0.0
    last = 0.0
    for _ in range(50):
        ta = a.next_after(ta)
        tb = b.next_after(tb)
        assert ta == tb
        assert ta > last
        last = ta


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, random.Random(0))


def test_trace_arrivals_pop_in_order_then_exhaust():
    trace = TraceArrivals((3.0, 1.0, 2.0))
    times = [trace.next_after(0.0) for _ in range(3)]
    assert times == [1.0 * SEC, 2.0 * SEC, 3.0 * SEC]
    assert trace.next_after(times[-1]) == float("inf")
    assert trace.remaining == 0


def test_tenant_class_samples_stay_in_bounds():
    cls = TenantClass("web", (64 * MB, 512 * MB), (4.0, 30.0))
    rng = random.Random(7)
    for _ in range(200):
        assert 64 * MB <= cls.sample_footprint(rng) <= 512 * MB
        assert 4.0 * SEC <= cls.sample_lifetime_us(rng) <= 30.0 * SEC


def test_pick_class_respects_weights():
    heavy = TenantClass("heavy", (MB, 2 * MB), (1.0, 2.0), weight=99.0)
    light = TenantClass("light", (MB, 2 * MB), (1.0, 2.0), weight=1.0)
    rng = random.Random(3)
    picks = [pick_class((heavy, light), rng).name for _ in range(300)]
    assert picks.count("heavy") > 250


# --------------------------------------------------------------------- #
# OOM killer                                                             #
# --------------------------------------------------------------------- #


class _Proc:
    """Minimal stand-in: the killer only reads pid, name, rss_pages()."""

    def __init__(self, pid, name, rss):
        self.pid = pid
        self.name = name
        self._rss = rss

    def rss_pages(self):
        return self._rss


def _pressure(oom, procs, epochs=1):
    """Feed ``epochs`` above-high samples; return victims of the last."""
    victims = []
    for _ in range(epochs):
        victims = oom.on_epoch(0.95, procs)
    return victims


def test_oom_badness_orders_by_rss_then_pid():
    oom = OOMKiller(Watermarks(0.88, 0.80), kills_per_epoch=2)
    procs = [_Proc(1, "a", 100), _Proc(2, "b", 500), _Proc(3, "c", 500)]
    victims = _pressure(oom, procs)
    # largest RSS first; equal RSS breaks ties toward the lower pid.
    assert [v.pid for v in victims] == [2, 3]
    assert oom.kills == 2


def test_oom_below_watermark_kills_nothing():
    oom = OOMKiller(Watermarks(0.88, 0.80))
    assert oom.on_epoch(0.50, [_Proc(1, "a", 100)]) == []
    assert oom.kills == 0
    assert oom.pressure_epochs == 0


def test_oom_prefers_unprotected_even_when_smaller():
    oom = OOMKiller(Watermarks(0.88, 0.80), protected_prefixes=("db",),
                    grace_epochs=0)
    procs = [_Proc(1, "db-1", 1000), _Proc(2, "web-1", 10)]
    victims = _pressure(oom, procs, epochs=3)
    assert [v.name for v in victims] == ["web-1"]
    assert oom.protected_kills == 0


def test_oom_protected_grace_then_kill():
    oom = OOMKiller(Watermarks(0.88, 0.80), protected_prefixes=("db",),
                    grace_epochs=3)
    procs = [_Proc(1, "db-1", 100), _Proc(2, "db-2", 200)]
    # within the grace window: pressure mounts but nobody dies.
    for _ in range(3):
        assert oom.on_epoch(0.95, procs) == []
    # grace exhausted: the worst protected tenant finally goes.
    victims = oom.on_epoch(0.95, procs)
    assert [v.name for v in victims] == ["db-2"]
    assert oom.protected_kills == 1
    assert oom.kills == 1


def test_oom_pressure_resets_below_low_watermark():
    oom = OOMKiller(Watermarks(0.88, 0.80), protected_prefixes=("db",),
                    grace_epochs=3)
    procs = [_Proc(1, "db-1", 100)]
    for _ in range(3):
        oom.on_epoch(0.95, procs)
    assert oom.pressure_epochs == 3
    oom.on_epoch(0.50, procs)  # relief: hysteresis deactivates
    assert oom.pressure_epochs == 0
    # the grace window starts over — no kill on the next pressure epoch.
    assert oom.on_epoch(0.95, procs) == []


# --------------------------------------------------------------------- #
# manager churn                                                          #
# --------------------------------------------------------------------- #


def _small_fleet_kernel(policy="linux-4kb"):
    return make_kernel(8 * GB, policy, Scale(1 / 128), boot_zeroed=True)


def test_manager_spawns_runs_and_reaps():
    kernel = _small_fleet_kernel()
    manager = FleetManager(kernel, FleetSpec(rate_per_s=2.0, seed=1),
                           scale_factor=1 / 128)
    assert kernel.fleet is manager
    for _ in range(120):
        kernel.run_epoch()
    assert manager.spawned > 0
    assert manager.exited > 0
    assert manager.spawned == manager.exited + manager.active
    # every live process belongs to the fleet — nothing leaks.
    assert manager.active == len(kernel.processes)
    assert manager.peak_active >= manager.active


def test_manager_kill_accounting_invariant():
    # a cramped machine under a hot arrival rate: the OOM killer must
    # fire, and every kill must show up as an OOM-attributed exit.
    kernel = make_kernel(4 * GB, "linux-4kb", Scale(1 / 128),
                         boot_zeroed=True)
    manager = FleetManager(kernel, FleetSpec(rate_per_s=8.0, seed=5),
                           scale_factor=1 / 128)
    for _ in range(300):
        kernel.run_epoch()
    assert manager.oom_kills > 0
    snap = manager.snapshot()
    per_class_oom = sum(c["oom_kills"] for c in snap["classes"].values())
    assert manager.oom_kills == per_class_oom == manager.oom.kills
    per_class_tenants = sum(c["tenants"] for c in snap["classes"].values())
    assert snap["exited"] == per_class_tenants


def test_manager_max_tenants_cap():
    kernel = _small_fleet_kernel()
    manager = FleetManager(kernel, FleetSpec(rate_per_s=20.0, seed=2,
                                             max_tenants=5),
                           scale_factor=1 / 128)
    for _ in range(60):
        kernel.run_epoch()
        assert manager.active <= 5
    assert manager.peak_active <= 5


def test_manager_installs_group_limits_on_hawkeye_only():
    hk = _small_fleet_kernel("hawkeye-g")
    FleetManager(hk, FleetSpec(group_limits={"batch-*": 4}),
                 scale_factor=1 / 128)
    assert hk.policy.limits is not None
    assert hk.policy.limits.group_stats() == {"batch-": (0, 4)}
    linux = _small_fleet_kernel("linux-2mb")
    FleetManager(linux, FleetSpec(group_limits={"batch-*": 4}),
                 scale_factor=1 / 128)
    assert not hasattr(linux.policy, "limits") or linux.policy.limits is None


def test_trace_driven_fleet_spawns_exactly_scheduled_arrivals():
    kernel = _small_fleet_kernel()
    manager = FleetManager(
        kernel,
        FleetSpec(arrival_times_s=(1.0, 2.0, 3.0), seed=0),
        scale_factor=1 / 128)
    for _ in range(40):
        kernel.run_epoch()
    assert manager.spawned == 3


# --------------------------------------------------------------------- #
# experiment cells                                                       #
# --------------------------------------------------------------------- #


def test_fleet_smoke_cell_deterministic():
    first = run_fleet_smoke("arrival-smoke", "linux-4kb", Scale(1 / 256))
    second = run_fleet_smoke("arrival-smoke", "linux-4kb", Scale(1 / 256))
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)
    assert first["exited"] >= 100
    for key in ("fairness_spread", "fault_p50_us", "fault_p99_us",
                "oom_kills", "peak_active", "classes", "limit_refusals"):
        assert key in first


# --------------------------------------------------------------------- #
# telemetry integration                                                  #
# --------------------------------------------------------------------- #


def test_telemetry_carries_fleet_snapshot_only_when_attached():
    from repro.metrics import telemetry as tmod

    plain = _small_fleet_kernel()
    sampler = tmod.attach(plain)
    plain.run_epochs(3)
    art = sampler.telemetry()
    assert art.fleet == {}
    assert "fleet" not in art.to_dict()
    tmod.detach(plain)

    kernel = _small_fleet_kernel()
    FleetManager(kernel, FleetSpec(rate_per_s=2.0, seed=1),
                 scale_factor=1 / 128)
    sampler = tmod.attach(kernel)
    kernel.run_epochs(40)
    art = sampler.telemetry()
    tmod.detach(kernel)
    assert art.fleet["spawned"] > 0
    assert "fleet" in art.to_dict()
    scalars = art.scalar_metrics()
    assert scalars["fleet.spawned"] == art.fleet["spawned"]
    assert any(name.startswith("fleet.web.") for name in scalars)
    # the prometheus-style families are live too.  The sampler scrapes
    # before the fleet hook runs each epoch, so the last scrape may lag
    # the final snapshot by at most that one hook's actions.
    counters = art.scrapes[-1]["counters"]["fleet_tenants_total"]
    assert 0 < counters["event=spawned"] <= art.fleet["spawned"]
    assert counters["event=exited"] <= art.fleet["exited"]


def test_kernel_fleet_slot_defaults_to_none():
    kernel = _small_fleet_kernel()
    assert kernel.fleet is None


# --------------------------------------------------------------------- #
# scenario integration                                                   #
# --------------------------------------------------------------------- #


def test_scenario_fleet_phase_validates_and_runs():
    from repro.scenario.executor import run_scenario_case
    from repro.scenario.schema import ScenarioError, validate_scenario

    doc = {
        "scenario": 1,
        "name": "fleet-demo",
        "policies": ["linux-4kb"],
        "machine": {"mem_gb": 8.0},
        "max_epochs": 100,
        "drain": False,
        "phases": [
            {"name": "ramp", "fleet": {"rate_per_s": 1.0, "seed": 7},
             "run_s": 30},
            {"name": "surge", "fleet": {"rate_per_s": 4.0}, "run_s": 30},
        ],
    }
    scenario = validate_scenario(doc)
    result = run_scenario_case(scenario, "timeline", "linux-4kb",
                               Scale(1 / 128))
    assert result["fleet"]["spawned"] > 0
    assert result["epochs"] == 60

    bad = dict(doc)
    bad["phases"] = [{"fleet": {"rate_per_s": 0}, "run_s": 1}]
    with pytest.raises(ScenarioError):
        validate_scenario(bad)


def test_scenario_without_fleet_has_no_fleet_key():
    from repro.scenario.executor import run_scenario_case
    from repro.scenario.schema import validate_scenario

    doc = {
        "scenario": 1,
        "name": "no-fleet",
        "policies": ["linux-4kb"],
        "machine": {"mem_gb": 8.0},
        "max_epochs": 20,
        "drain": False,
        "phases": [{"name": "idle", "run_s": 5}],
    }
    scenario = validate_scenario(doc)
    result = run_scenario_case(scenario, "timeline", "linux-4kb",
                               Scale(1 / 128))
    assert "fleet" not in result
