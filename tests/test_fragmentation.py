"""Unit tests for FMFI and the controlled fragmenter."""

import pytest

from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.frames import FrameTable


def make(num_frames=8192):
    frames = FrameTable(num_frames)
    buddy = BuddyAllocator(frames)
    return frames, buddy, Fragmenter(buddy)


def test_fmfi_zero_when_pristine():
    _, buddy, _ = make()
    assert fmfi(buddy) == 0.0


def test_fmfi_one_when_memory_exhausted():
    _, buddy, _ = make(1024)
    buddy.alloc(order=10)
    assert fmfi(buddy) == 1.0


def test_fmfi_rises_with_fragmentation():
    _, buddy, frag = make()
    low = fmfi(buddy)
    frag.fragment(keep_fraction=0.05)
    assert fmfi(buddy) > low
    assert fmfi(buddy) > 0.9, "scattered 5% residue should break all order-9 blocks"


def test_fragment_keeps_requested_fraction():
    _, buddy, frag = make(8192)
    frag.fragment(keep_fraction=0.1)
    assert frag.cache_pages == pytest.approx(8192 * 0.1, rel=0.05)
    assert buddy.allocated_pages == frag.cache_pages


def test_fragment_with_target_fmfi_stops_early():
    # keep_fraction 0 would normally release everything (FMFI back to 0);
    # the target makes the fragmenter stop while still fragmented.
    _, buddy, frag = make(8192)
    result = frag.fragment(keep_fraction=0.0, target_fmfi=0.6)
    assert result <= 0.6
    assert frag.cache_pages > 0, "early stop retains extra pages in the cache"


def naive_fragment(frag: Fragmenter, keep_fraction: float, target_fmfi: float):
    """Reference implementation: recompute FMFI after every single free.

    This is the O(frees x fmfi) loop the incremental early-stop check in
    ``Fragmenter.fragment`` replaced; kept here to pin exact equivalence.
    """
    taken = []
    while True:
        got = frag.buddy.try_alloc(order=0, prefer_zero=False, owner=-2)
        if got is None:
            break
        taken.append(got[0])
    frag._rng.shuffle(taken)
    keep = int(len(taken) * keep_fraction)
    kept, to_free = taken[:keep], taken[keep:]
    frag._cache_pages.update(kept)
    for i, frame in enumerate(to_free):
        frag.buddy.free(frame, 0)
        if fmfi(frag.buddy) <= target_fmfi:
            frag._cache_pages.update(to_free[i + 1:])
            return fmfi(frag.buddy)
    return fmfi(frag.buddy)


@pytest.mark.parametrize("target", [0.3, 0.6, 0.9, 1.0])
def test_target_fmfi_matches_every_free_reference(target):
    """The event-driven early stop lands on the exact same frame (and
    therefore identical FMFI and cache contents) as the per-free scan."""
    _, _, frag_fast = make(8192)
    _, _, frag_ref = make(8192)
    fast = frag_fast.fragment(keep_fraction=0.0, target_fmfi=target)
    ref = naive_fragment(frag_ref, keep_fraction=0.0, target_fmfi=target)
    assert fast == ref
    assert frag_fast.cache_pages == frag_ref.cache_pages
    assert frag_fast._cache_pages == frag_ref._cache_pages


def test_target_fmfi_checks_only_on_coalesce_events(monkeypatch):
    """Setup cost: FMFI is recomputed per order-9 coalesce, not per free."""
    import repro.mem.fragmentation as fragmentation

    _, _, frag = make(8192)
    calls = {"n": 0}
    real = fragmentation.fmfi

    def counting(buddy, order=9):
        calls["n"] += 1
        return real(buddy, order)

    monkeypatch.setattr(fragmentation, "fmfi", counting)
    frag.fragment(keep_fraction=0.0, target_fmfi=0.0)  # frees all 8192 frames
    assert calls["n"] <= 8192 // 256, "FMFI recomputed far too often"


def test_buddy_free_returns_coalesced_order():
    frames = FrameTable(1024)
    buddy = BuddyAllocator(frames)
    start, _ = buddy.alloc(order=9)
    for i in range(512):
        order = buddy.free(start + 511 - i, 0)
        if i < 511:
            # the order-9 block cannot complete until every frame is back
            assert order < 9
        else:
            # the last free completes order 9 and then merges with the
            # other (always-free) order-9 block of the 1024-frame table
            assert order >= 9


def test_reclaim_frees_cache_pages():
    _, buddy, frag = make()
    frag.fragment(keep_fraction=0.2)
    held = frag.cache_pages
    freed = frag.reclaim(100)
    assert freed == 100
    assert frag.cache_pages == held - 100
    assert buddy.free_pages == 8192 - held + 100


def test_reclaim_bounded_by_cache():
    _, buddy, frag = make(1024)
    frag.fragment(keep_fraction=0.01)
    held = frag.cache_pages
    freed = frag.reclaim(10_000)
    assert freed == held
    assert frag.cache_pages == 0
    assert buddy.free_pages == 1024


def test_release_all_restores_memory():
    _, buddy, frag = make()
    frag.fragment(keep_fraction=0.3)
    frag.release_all()
    assert buddy.free_pages == 8192
    assert fmfi(buddy) == 0.0, "coalescing must fully rebuild order-9 blocks"


def test_migrate_page_moves_cache_entry():
    _, buddy, frag = make(1024)
    frag.fragment(keep_fraction=0.1)
    victim = next(iter(frag._cache_pages))
    assert frag.migrate_page(victim, 999_999) is True
    assert victim not in frag._cache_pages
    assert 999_999 in frag._cache_pages
    assert frag.migrate_page(victim, 5) is False
