"""Unit tests for FMFI and the controlled fragmenter."""

import pytest

from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.frames import FrameTable


def make(num_frames=8192):
    frames = FrameTable(num_frames)
    buddy = BuddyAllocator(frames)
    return frames, buddy, Fragmenter(buddy)


def test_fmfi_zero_when_pristine():
    _, buddy, _ = make()
    assert fmfi(buddy) == 0.0


def test_fmfi_one_when_memory_exhausted():
    _, buddy, _ = make(1024)
    buddy.alloc(order=10)
    assert fmfi(buddy) == 1.0


def test_fmfi_rises_with_fragmentation():
    _, buddy, frag = make()
    low = fmfi(buddy)
    frag.fragment(keep_fraction=0.05)
    assert fmfi(buddy) > low
    assert fmfi(buddy) > 0.9, "scattered 5% residue should break all order-9 blocks"


def test_fragment_keeps_requested_fraction():
    _, buddy, frag = make(8192)
    frag.fragment(keep_fraction=0.1)
    assert frag.cache_pages == pytest.approx(8192 * 0.1, rel=0.05)
    assert buddy.allocated_pages == frag.cache_pages


def test_fragment_with_target_fmfi_stops_early():
    # keep_fraction 0 would normally release everything (FMFI back to 0);
    # the target makes the fragmenter stop while still fragmented.
    _, buddy, frag = make(8192)
    result = frag.fragment(keep_fraction=0.0, target_fmfi=0.6)
    assert result <= 0.6
    assert frag.cache_pages > 0, "early stop retains extra pages in the cache"


def test_reclaim_frees_cache_pages():
    _, buddy, frag = make()
    frag.fragment(keep_fraction=0.2)
    held = frag.cache_pages
    freed = frag.reclaim(100)
    assert freed == 100
    assert frag.cache_pages == held - 100
    assert buddy.free_pages == 8192 - held + 100


def test_reclaim_bounded_by_cache():
    _, buddy, frag = make(1024)
    frag.fragment(keep_fraction=0.01)
    held = frag.cache_pages
    freed = frag.reclaim(10_000)
    assert freed == held
    assert frag.cache_pages == 0
    assert buddy.free_pages == 1024


def test_release_all_restores_memory():
    _, buddy, frag = make()
    frag.fragment(keep_fraction=0.3)
    frag.release_all()
    assert buddy.free_pages == 8192
    assert fmfi(buddy) == 0.0, "coalescing must fully rebuild order-9 blocks"


def test_migrate_page_moves_cache_entry():
    _, buddy, frag = make(1024)
    frag.fragment(keep_fraction=0.1)
    victim = next(iter(frag._cache_pages))
    assert frag.migrate_page(victim, 999_999) is True
    assert victim not in frag._cache_pages
    assert 999_999 in frag._cache_pages
    assert frag.migrate_page(victim, 5) is False
