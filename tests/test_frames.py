"""Unit tests for the frame table and its content model."""

import pytest

from repro.errors import AllocationError
from repro.mem.frames import NO_OWNER, ZERO_TAG, FrameTable
from repro.units import BASE_PAGE_SIZE


@pytest.fixture
def ft() -> FrameTable:
    return FrameTable(1024)


def test_initial_state_is_zeroed_and_free(ft):
    assert ft.num_frames == 1024
    assert not ft.allocated.any()
    assert ft.is_zero(0) and ft.is_zero(1023)
    assert (ft.content_tag == ZERO_TAG).all()


def test_rejects_empty_table():
    with pytest.raises(AllocationError):
        FrameTable(0)


def test_write_marks_nonzero_with_fresh_tag(ft):
    ft.write(5, first_nonzero=17)
    assert not ft.is_zero(5)
    assert ft.first_nonzero[5] == 17
    assert ft.content_tag[5] != ZERO_TAG
    ft.write(6, first_nonzero=17)
    assert ft.content_tag[5] != ft.content_tag[6], "tags must be unique by default"


def test_write_with_shared_tag(ft):
    ft.write(1, first_nonzero=0, tag=42)
    ft.write(2, first_nonzero=0, tag=42)
    assert ft.content_tag[1] == ft.content_tag[2] == 42


def test_write_rejects_out_of_page_offset(ft):
    with pytest.raises(ValueError):
        ft.write(0, first_nonzero=BASE_PAGE_SIZE)
    with pytest.raises(ValueError):
        ft.write(0, first_nonzero=-1)


def test_write_zero_resets_content(ft):
    ft.write(3)
    ft.write_zero(3)
    assert ft.is_zero(3)
    assert ft.content_tag[3] == ZERO_TAG


def test_zero_fill_range(ft):
    for frame in range(10, 20):
        ft.write(frame)
    ft.zero_fill(10, 5)
    assert ft.zero_mask(10, 10).tolist() == [True] * 5 + [False] * 5


def test_scan_cost_stops_at_first_nonzero_byte(ft):
    """Paper §3.2: in-use pages cost ~first_nonzero+1 bytes to classify."""
    ft.write(0, first_nonzero=9)
    assert ft.scan_cost_bytes(0) == 10
    ft.write(1, first_nonzero=0)
    assert ft.scan_cost_bytes(1) == 1


def test_scan_cost_full_page_for_zero_pages(ft):
    assert ft.scan_cost_bytes(2) == BASE_PAGE_SIZE


def test_allocation_bookkeeping(ft):
    ft.mark_allocated(100, 4, owner=7)
    assert ft.allocated[100:104].all()
    assert (ft.owner[100:104] == 7).all()
    assert ft.allocated_count() == 4
    ft.mark_free(100, 4)
    assert not ft.allocated[100:104].any()
    assert (ft.owner[100:104] == NO_OWNER).all()


def test_mark_free_clears_pins(ft):
    ft.mark_allocated(0, 1)
    ft.pinned[0] = True
    ft.mark_free(0, 1)
    assert not ft.pinned[0]


def test_fresh_tags_monotonic(ft):
    tags = {ft.fresh_tag() for _ in range(100)}
    assert len(tags) == 100
    assert ZERO_TAG not in tags
