"""Unit tests for the integrated HawkEye policy."""

import pytest

from repro.core.hawkeye import HawkEyeConfig, HawkEyePolicy
from repro.kernel.kernel import Kernel
from repro.units import MB, PAGES_PER_HUGE, SEC
from tests.conftest import small_config, spawn_simple
from tests.test_fault import make_proc


def make(variant="g", promote_per_sec=100.0, **overrides):
    return Kernel(
        small_config(64),
        lambda k: HawkEyePolicy(
            k, variant=variant, promote_per_sec=promote_per_sec,
            prezero_pages_per_sec=1e6, **overrides
        ),
    )


def test_config_and_overrides_exclusive():
    kernel = make()
    with pytest.raises(ValueError):
        HawkEyePolicy(kernel, HawkEyeConfig(), variant="pmu")


def test_name_reflects_variant():
    assert make("g").policy.name == "hawkeye-g"
    assert make("pmu").policy.name == "hawkeye-pmu"


def test_huge_fault_without_sync_zeroing():
    kernel = make()
    kernel.run_epochs(2)  # pre-zero boot memory (already zero, no-op)
    proc, vma = make_proc(kernel)
    latency = kernel.fault(proc, vma.start)
    assert latency == pytest.approx(13.0)


def test_huge_faults_disabled_variant():
    kernel = make(huge_faults=False)
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    assert proc.stats.huge_faults == 0


def test_sampling_populates_access_map():
    # tiny promotion budget so the sampled candidates are still visible
    kernel = make(promote_per_sec=0.001)
    kernel.fragmenter.fragment(keep_fraction=0.02)  # force base mappings
    run = spawn_simple(kernel, heap_mb=8, work_s=600.0)
    kernel.run_epochs(31)
    amap = kernel.policy.access_maps.get(run.proc.pid)
    assert amap is not None and len(amap) > 0


def test_promotion_happens_after_sampling():
    kernel = make()
    kernel.fragmenter.fragment(keep_fraction=0.02)
    run = spawn_simple(kernel, heap_mb=8, work_s=600.0)
    kernel.run_epochs(2)  # allocation faults land while fragmented
    assert run.proc.stats.huge_faults == 0
    kernel.fragmenter.release_all()  # contiguity returns
    kernel.run_epochs(40)
    assert run.proc.stats.promotions > 0


def test_memory_pressure_triggers_emergency_recovery():
    kernel = Kernel(
        small_config(16),
        lambda k: HawkEyePolicy(k, variant="g", prezero_pages_per_sec=1e6),
    )
    proc, vma = make_proc(kernel, nbytes=14 * MB)
    # fill memory with mostly-bloat huge pages
    for hvpn in range(vma.start >> 9, (vma.end >> 9)):
        kernel.fault(proc, hvpn << 9)
        block = proc.page_table.huge[hvpn].frame
        kernel.frames.write(block, first_nonzero=0)
    # now allocate beyond free memory from a second process: the policy
    # must free bloat rather than OOM
    proc2, vma2 = make_proc(kernel, nbytes=4 * MB)
    for vpn in range(vma2.start, vma2.start + 600):
        kernel.fault(proc2, vpn)
    assert proc2.rss_pages() == 600
    assert kernel.stats.bloat_pages_recovered > 0
    assert kernel.stats.oom_kills == 0


def test_estimated_overhead_g_uses_access_map():
    kernel = make("g")
    proc, vma = make_proc(kernel)
    policy = kernel.policy
    assert policy.estimated_overhead(proc) == 0.0
    from repro.core.access_map import AccessMap

    amap = AccessMap()
    for r in range(20):
        amap.update(r, 480)
    policy.access_maps[proc.pid] = amap
    assert policy.estimated_overhead(proc) > 0.8


def test_estimated_overhead_pmu_uses_counters():
    kernel = make("pmu")
    proc, vma = make_proc(kernel)
    kernel.pmu[proc.pid].record(400.0, 1000.0)
    kernel.run_epochs(1)
    assert kernel.policy.estimated_overhead(proc) == pytest.approx(0.2, abs=0.01)
    kernel.run_epochs(3)  # EMA converges toward the 0.4 interval reading
    # no new activity: samples decay toward zero
    assert kernel.policy.estimated_overhead(proc) < 0.2


def test_bloat_demoted_flag_cleared_on_reuse():
    kernel = make()
    proc, vma = make_proc(kernel)
    region = proc.region(vma.start >> 9)
    region.resident = 5
    region.bloat_demoted = True
    region.last_coverage = 40
    kernel.policy.on_sample(proc)
    assert not region.bloat_demoted


def test_process_exit_cleans_state():
    kernel = make()
    proc, vma = make_proc(kernel)
    kernel.policy.access_maps[proc.pid] = object.__new__(
        __import__("repro.core.access_map", fromlist=["AccessMap"]).AccessMap
    )
    kernel.policy.measured[proc.pid] = 0.5
    kernel.policy.on_process_exit(proc)
    assert proc.pid not in kernel.policy.access_maps
    assert proc.pid not in kernel.policy.measured
