"""Directed tests for the DAMON-style spatial heat monitor."""

from __future__ import annotations

import json

import numpy as np

from repro import audit, heat, trace
from repro.metrics import telemetry
from repro.units import PAGES_PER_HUGE
from tests.conftest import spawn_simple


def _run_sampled(kernel, epochs=90, **spawn_kw):
    """Attach a monitor and run past several access-bit samples.

    ``epochs`` defaults to a multiple of ``sample_period`` (30) so the
    kernel stops immediately after folding a sample — the region table
    is then byte-for-byte the state the last sample saw.
    """
    monitor = heat.attach(kernel)
    spawn_kw.setdefault("work_s", 100.0)
    run = spawn_simple(kernel, **spawn_kw)
    kernel.run(max_epochs=epochs)
    return monitor, run


# -- attachment --------------------------------------------------------- #


def test_attach_detach_flags(kernel_hawkeye):
    assert not heat.enabled and kernel_hawkeye.heat is None
    monitor = heat.attach(kernel_hawkeye)
    assert heat.enabled and kernel_hawkeye.heat is monitor
    # idempotent: re-attach returns the same monitor
    assert heat.attach(kernel_hawkeye) is monitor
    assert heat.detach(kernel_hawkeye) is monitor
    assert not heat.enabled and kernel_hawkeye.heat is None
    assert heat.detach(kernel_hawkeye) is None


def test_attach_forwards_config(kernel_hawkeye):
    monitor = heat.attach(kernel_hawkeye, nbins=8, max_regions=32,
                          min_regions=4)
    assert (monitor.nbins, monitor.max_regions, monitor.min_regions) \
        == (8, 32, 4)


def test_no_monitor_keeps_kernel_clean(kernel_hawkeye):
    spawn_simple(kernel_hawkeye)
    kernel_hawkeye.run(max_epochs=40)
    assert kernel_hawkeye.heat is None and not heat.enabled


def test_instance_gate_pauses_sampling(kernel_hawkeye):
    monitor = heat.attach(kernel_hawkeye)
    monitor.enabled = False
    spawn_simple(kernel_hawkeye, work_s=100.0)
    kernel_hawkeye.run(max_epochs=60)
    assert monitor.samples == 0 and not monitor.procs


# -- sampling and region invariants ------------------------------------- #


def test_regions_partition_vma_spans(kernel_hawkeye):
    monitor, run = _run_sampled(kernel_hawkeye)
    assert monitor.samples == 3          # epochs 30, 60, 90
    state = monitor.procs[run.proc.pid]
    spans = tuple((v.start >> 9, (v.end + PAGES_PER_HUGE - 1) >> 9)
                  for v in run.proc.vmas if v.npages > 0)
    assert state.spans == spans
    # regions are sorted, non-empty and abut; coalescing them across
    # span boundaries reproduces the spans exactly
    rebuilt, cursor = [], None
    for r in state.regions:
        assert r.start < r.end
        if cursor is not None and r.start == cursor:
            rebuilt[-1] = (rebuilt[-1][0], r.end)
        else:
            rebuilt.append((r.start, r.end))
        cursor = r.end
    assert tuple(rebuilt) == spans


def test_sample_counts_conserved(kernel_hawkeye):
    monitor, run = _run_sampled(kernel_hawkeye)
    state = monitor.procs[run.proc.pid]
    table = run.proc.regions
    weights = np.where(table.resident_arr() > 0,
                       table.last_coverage_arr(), 0)
    assert sum(r.sample for r in state.regions) == int(weights.sum())


def test_region_budget_respected(kernel_hawkeye):
    monitor = heat.attach(kernel_hawkeye, max_regions=16, min_regions=4)
    run = spawn_simple(kernel_hawkeye, heap_mb=16, work_s=100.0)
    kernel_hawkeye.run(max_epochs=90)
    state = monitor.procs[run.proc.pid]
    assert 1 <= len(state.regions) <= 16


def test_wss_estimate_tracks_exact(kernel_hawkeye):
    """Both series integrate the same access-bit signal with the same
    EMA alpha, so on a steady workload they track closely."""
    monitor, run = _run_sampled(kernel_hawkeye)
    state = monitor.procs[run.proc.pid]
    assert state.samples >= 3
    est, exact = state.wss_estimate[-1], state.wss_exact[-1]
    assert exact > 0
    assert abs(est - exact) / exact < 0.15


def test_monitor_is_pure_observer():
    """Attaching heat must not change any simulated result byte."""
    from repro.core.hawkeye import HawkEyePolicy
    from repro.experiments import reset_sim_state
    from repro.kernel import procfs
    from repro.kernel.kernel import Kernel
    from tests.conftest import small_config

    def outcome(with_heat: bool):
        reset_sim_state()
        kernel = Kernel(small_config(), lambda k: HawkEyePolicy(
            k, variant="g", promote_per_sec=100.0,
            prezero_pages_per_sec=1e6))
        if with_heat:
            heat.attach(kernel)
        spawn_simple(kernel, work_s=100.0)
        kernel.run(max_epochs=90)
        return kernel.now_us, procfs.vmstat(kernel), procfs.meminfo(kernel)

    bare, monitored = outcome(False), outcome(True)
    heat.reset()
    assert bare == monitored


def test_retired_process_snapshot(kernel_hawkeye):
    monitor = heat.attach(kernel_hawkeye)
    early = spawn_simple(kernel_hawkeye, work_s=65.0, name="w")
    spawn_simple(kernel_hawkeye, work_s=155.0, name="late")
    kernel_hawkeye.run(max_epochs=90)
    assert early.finished
    kernel_hawkeye.exit_process(early.proc)
    kernel_hawkeye.run_epochs(30)        # next sample retires the pid
    assert early.proc.pid not in monitor.procs
    retired = [p for p in monitor.retired if p["pid"] == early.proc.pid]
    assert retired and retired[-1]["finished"]
    snap = monitor.snapshot()
    names = [p["process"] for p in snap["processes"]]
    assert "late" in names and "w" in names


# -- snapshot shape ------------------------------------------------------ #


def test_snapshot_shape_and_json_round_trip(kernel_hawkeye):
    monitor, run = _run_sampled(kernel_hawkeye)
    snap = monitor.snapshot()
    assert snap["samples"] == monitor.samples
    proc = snap["processes"][0]
    for key in ("process", "pid", "samples", "span", "bins", "t_s",
                "heat", "util", "huge", "bloat", "node", "alloc_age",
                "regions", "hot_regions", "wss"):
        assert key in proc, key
    assert 0 < len(proc["heat"]) == len(proc["t_s"]) <= heat.HISTORY
    assert all(len(row) == proc["bins"] for row in proc["heat"])
    for p in ("p50", "p95", "p99"):
        assert p in proc["wss"]
    # UMA kernel, no audit attached: placeholder rows stay None
    assert all(r is None for r in proc["node"])
    assert all(r is None for r in proc["alloc_age"])
    assert json.loads(json.dumps(snap)) == snap


def test_alloc_age_rows_join_frame_ledger(kernel_hawkeye):
    audit.attach(kernel_hawkeye)
    monitor, run = _run_sampled(kernel_hawkeye)
    proc = monitor.snapshot()["processes"][0]
    last = proc["alloc_age"][-1]
    assert last is not None
    assert any(v >= 0 for v in last)
    audit.detach(kernel_hawkeye)


# -- telemetry integration ----------------------------------------------- #


def test_telemetry_capture_includes_heat(kernel_hawkeye):
    heat.attach(kernel_hawkeye)          # before the sampler: gauges are
    sampler = telemetry.attach(kernel_hawkeye)   # declared at construction
    spawn_simple(kernel_hawkeye, work_s=100.0)
    kernel_hawkeye.run(max_epochs=90)
    doc = sampler.telemetry().to_dict()
    assert doc["heat"]["samples"] == 3
    scalars = telemetry.RunTelemetry.from_dict(doc).scalar_metrics()
    assert scalars["heat.w.regions"] >= 1
    assert "heat.w.wss_p50" in scalars
    gauges = doc["scrapes"][-1]["gauges"]
    assert gauges.get("heat_monitoring_regions")
    heat.detach(kernel_hawkeye)
    telemetry.detach(kernel_hawkeye)


def test_telemetry_omits_heat_when_empty(kernel4k):
    """No samples folded -> no `heat` key (artifact byte identity)."""
    heat.attach(kernel4k)
    sampler = telemetry.attach(kernel4k)
    spawn_simple(kernel4k)               # finishes well under sample_period
    kernel4k.run(max_epochs=10)
    doc = sampler.telemetry().to_dict()
    assert "heat" not in doc
    heat.detach(kernel4k)
    telemetry.detach(kernel4k)


def test_telemetry_without_monitor_has_no_heat_families(kernel4k):
    sampler = telemetry.attach(kernel4k)
    spawn_simple(kernel4k, work_s=100.0)
    kernel4k.run(max_epochs=90)
    doc = sampler.telemetry().to_dict()
    assert "heat" not in doc
    assert not any("heat" in name for scrape in doc["scrapes"]
                   for name in scrape["gauges"])
    telemetry.detach(kernel4k)


# -- trace integration ---------------------------------------------------- #


def test_heat_emits_wss_tracepoints(kernel_hawkeye):
    tracer = trace.attach(kernel_hawkeye)
    monitor, run = _run_sampled(kernel_hawkeye)
    events = tracer.of_kind(trace.TraceKind.HEAT_WSS)
    assert len(events) == monitor.samples
    assert events[-1].span_us == 0.0
    assert "wss_pages=" in events[-1].detail
    trace.detach(kernel_hawkeye)


def test_chrome_export_renders_heat_counters(kernel_hawkeye):
    from repro.metrics.export import trace_to_chrome

    tracer = trace.attach(kernel_hawkeye)
    _run_sampled(kernel_hawkeye)
    doc = json.loads(trace_to_chrome(tracer.events))
    counters = [r for r in doc["traceEvents"] if r["ph"] == "C"]
    assert counters
    args = counters[-1]["args"]
    assert set(args) == {"wss_pages", "hot_regions", "regions"}
    assert all(isinstance(v, float) for v in args.values())
    # heat events never render as instants or slices
    assert not any(r.get("name") == "heat.wss" for r in doc["traceEvents"]
                   if r["ph"] in ("i", "X"))
    trace.detach(kernel_hawkeye)


# -- rendering ------------------------------------------------------------#


def test_ramp_char_levels():
    assert heat.ramp_char(0, 512) == " "
    assert heat.ramp_char(-1, 512) == " "
    assert heat.ramp_char(512, 512) == "█"
    assert heat.ramp_char(1e9, 512) == "█"
    assert heat.ramp_char(1, 512) == "▁"


def test_format_helpers(kernel_hawkeye):
    monitor, run = _run_sampled(kernel_hawkeye)
    proc = monitor.snapshot()["processes"][0]
    hm = heat.format_heatmap(proc, epochs=3)
    assert "heat — w" in hm and "wss=" in hm
    assert hm.count("│") == 2 * 3        # 3 rows, two border chars each
    regions = heat.format_regions(proc)
    assert "monitoring regions" in regions and "span_hvpn" in regions
    wss = heat.format_wss(proc)
    assert "estimate_pages" in wss and "p50=" in wss
    util = heat.format_heatmap(proc, matrix="util")
    assert "util — w" in util and "wss=" not in util


def test_heatmap_svg_inline_and_standalone(kernel_hawkeye):
    import xml.dom.minidom

    from repro.report.html import heatmap_svg

    monitor, run = _run_sampled(kernel_hawkeye)
    proc = monitor.snapshot()["processes"][0]
    inline = heatmap_svg(proc)
    assert inline.startswith('<svg class="heatmap"')
    assert "xmlns" not in inline and "<style>" not in inline
    assert 'class="h0"' in inline
    standalone = heatmap_svg(proc, standalone=True)
    assert "xmlns" in standalone and "<style>" in standalone
    assert "prefers-color-scheme: dark" in standalone
    xml.dom.minidom.parseString(standalone)


def test_write_heat_svgs(tmp_path, kernel_hawkeye):
    import os

    from repro.report.html import write_heat_svgs

    monitor, _ = _run_sampled(kernel_hawkeye)
    written = write_heat_svgs(monitor.snapshot(), str(tmp_path),
                              label="cell/x:1")
    assert len(written) == 2             # heat + util for one process
    for path in written:
        assert os.path.basename(path).startswith("cell_x_1-w-")
        with open(path) as fh:
            assert fh.read().startswith('<svg class="heatmap"')


# -- CLI and report -------------------------------------------------------- #


def _heat_envelope(cell_id: str, snap: dict) -> dict:
    return {
        "cell_id": cell_id,
        "cell": {"experiment": cell_id.split("/")[0], "case": "c",
                 "policy": "hawkeye-g", "scale_denominator": 128},
        "result": {},
        "source": "test",
        "telemetry": [{"version": 1, "meta": {}, "scrapes": [],
                       "attribution": {}, "histograms": {}, "heat": snap}],
        "timing": {"finished_at": 1.0, "wall_s": 0.1},
    }


def _seed_cache(root, envelopes):
    from repro.runner.cache import ResultCache

    cache = ResultCache(root)
    cache.results_dir.mkdir(parents=True, exist_ok=True)
    for i, env in enumerate(envelopes):
        (cache.results_dir / f"k{i}.json").write_text(json.dumps(env))
    return cache


def test_cli_heat_live_json(capsys):
    from repro.cli import main

    rc = main(["heat", "kvm-spinup", "--policy", "hawkeye-g",
               "--scale", "256", "--max-epochs", "120", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc in (0, 1)
    assert doc["workload"] == "kvm-spinup"
    assert isinstance(doc["processes"], list)


def test_cli_heat_region_filter(capsys):
    from repro.cli import main

    rc = main(["heat", "xsbench", "--policy", "hawkeye-g",
               "--scale", "256", "--max-epochs", "120", "--region", "1"])
    out = capsys.readouterr().out
    assert rc in (0, 1)
    assert "monitoring region covering hvpn 1" in out or "outside" in out


def test_cli_heat_cache_mode(tmp_path, capsys, kernel_hawkeye):
    from repro.cli import main

    monitor, _ = _run_sampled(kernel_hawkeye)
    snap = monitor.snapshot()
    _seed_cache(tmp_path / "cache",
                [_heat_envelope("exp/c:hawkeye-g@128", snap)])
    cache_dir = str(tmp_path / "cache")

    assert main(["heat", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "exp/c:hawkeye-g@128" in out and "wss_p50" in out

    assert main(["heat", "--cache-dir", cache_dir, "--process", "w",
                 "--svg-dir", str(tmp_path / "svgs")]) == 0
    out = capsys.readouterr().out
    assert "heat — w" in out             # full per-cell heatmap rendered
    assert "monitoring regions" in out
    assert list((tmp_path / "svgs").glob("*.svg"))

    assert main(["heat", "--cache-dir", cache_dir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "exp/c:hawkeye-g@128" in doc["cells"]


def test_cli_heat_cache_empty(tmp_path, capsys):
    from repro.cli import main

    assert main(["heat", "--cache-dir", str(tmp_path)]) == 0
    assert "no captured heat snapshots" in capsys.readouterr().out


def test_report_html_heat_section(tmp_path, kernel_hawkeye):
    from repro.report.html import render_report

    monitor, _ = _run_sampled(kernel_hawkeye)
    cache = _seed_cache(tmp_path / "cache",
                        [_heat_envelope("exp/c:hawkeye-g@128",
                                        monitor.snapshot())])
    html = render_report(cache)
    assert "Spatial access heat" in html
    assert '<svg class="heatmap"' in html
    assert "--heat-8" in html
