"""Percentile interpolation tests for the log2-bucket latency histogram.

:class:`repro.trace.LatencyHistogram` backs every ``hist.*`` baseline
metric and the heat monitor's WSS percentile series, so its quantile
estimator is pinned here on known distributions: linear interpolation
inside a bucket, clamping to the exact min/max, and the degenerate
single-bucket / single-sample / empty cases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import LatencyHistogram


def fill(values):
    hist = LatencyHistogram()
    for v in values:
        hist.add(v)
    return hist


def test_known_distribution_interpolation():
    # 50 × 1.5µs (bucket [1,2)), 45 × 3.0µs ([2,4)), 5 × 10.0µs ([8,16))
    hist = fill([1.5] * 50 + [3.0] * 45 + [10.0] * 5)
    assert hist.count == 100
    # p50: target 50 lands exactly at the end of the first bucket.
    assert hist.quantile(0.50) == pytest.approx(2.0)
    # p95: target 95 exhausts the second bucket -> its upper edge.
    assert hist.quantile(0.95) == pytest.approx(4.0)
    # p99: 4/5 through [8,16) = 14.4, clamped to the exact max of 10.
    assert hist.quantile(0.99) == pytest.approx(10.0)
    assert hist.percentiles() == {
        "p50": pytest.approx(2.0), "p95": pytest.approx(4.0),
        "p99": pytest.approx(10.0)}


def test_single_bucket_spread_clamps_to_observed_range():
    # both samples land in [2,4); interpolation would give 3.98 at p99
    # but the estimate clamps to the exact observed max.
    hist = fill([2.0, 3.9])
    assert hist.quantile(0.50) == pytest.approx(3.0)
    assert hist.quantile(0.99) == pytest.approx(3.9)
    assert hist.quantile(0.0) == pytest.approx(2.0)
    assert hist.quantile(1.0) == pytest.approx(3.9)


def test_identical_samples_are_exact_at_every_quantile():
    hist = fill([3.0] * 100)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(3.0)


def test_single_sample_is_exact():
    hist = fill([7.0])
    for q in (0.0, 0.5, 1.0):
        assert hist.quantile(q) == pytest.approx(7.0)


def test_zero_samples_use_the_zero_bucket():
    hist = fill([0.0] * 9 + [100.0])
    assert hist.buckets[LatencyHistogram.ZERO_BUCKET] == 9
    assert hist.quantile(0.50) == 0.0
    # p99 interpolates in [64,128) but clamps to the exact max.
    assert hist.quantile(0.99) == pytest.approx(100.0)


def test_empty_histogram():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.quantile(0.5) == 0.0
    assert hist.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    assert hist.mean_us == 0.0


def test_quantile_rejects_out_of_range():
    hist = fill([1.0])
    with pytest.raises(ValueError):
        hist.quantile(-0.01)
    with pytest.raises(ValueError):
        hist.quantile(1.01)


def test_round_trip_preserves_percentiles():
    hist = fill([1.5] * 50 + [3.0] * 45 + [10.0] * 5)
    clone = LatencyHistogram.from_dict(hist.to_dict())
    assert clone.percentiles() == hist.percentiles()


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(0.001, 1e6), min_size=1, max_size=50),
       qs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6))
def test_quantile_bounded_and_monotone(values, qs):
    """Estimates stay inside [min, max] and are monotone in q."""
    hist = fill(values)
    estimates = [hist.quantile(q) for q in sorted(qs)]
    for est in estimates:
        assert min(values) <= est <= max(values)
    assert estimates == sorted(estimates)
