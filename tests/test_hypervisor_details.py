"""Focused tests for hypervisor internals: mirror profile, swap drain."""

import pytest

from repro.experiments import Scale, make_hypervisor, make_vm
from repro.units import GB, PAGES_PER_HUGE, SEC
from repro.virt.hypervisor import _HostMirrorProfile
from repro.workloads.base import ContentSpec, FreeOp, MmapOp, Phase, TouchOp, Workload

SCALE = Scale(1 / 256)


class Alloc(Workload):
    name = "alloc"

    def __init__(self, nbytes, free_after=False, hold_s=300.0):
        self.nbytes = nbytes
        self.free_after = free_after
        self.hold_s = hold_s

    def build_phases(self):
        ops = [MmapOp("h", self.nbytes),
               TouchOp("h", content=ContentSpec(first_nonzero=0))]
        if self.free_after:
            ops.append(FreeOp("h"))
        return [Phase("a", ops=ops), Phase("hold", duration_us=self.hold_s * SEC)]


class TestHostMirrorProfile:
    def test_coverage_tracks_guest_occupancy(self):
        hyp = make_hypervisor(32 * GB, "linux-4kb", SCALE)
        vm = make_vm(hyp, "v", 8 * GB, "linux-4kb", SCALE)
        profile = _HostMirrorProfile(vm)
        # only the guest kernel's own reserved zero frame is allocated
        boot = profile.region_coverage(hyp.host, vm.host_proc)
        assert sum(boot.values()) == 1
        vm.spawn(Alloc(SCALE.bytes(2 * GB)))
        hyp.run_epoch()
        coverage = profile.region_coverage(hyp.host, vm.host_proc)
        populated = [c for c in coverage.values() if c == PAGES_PER_HUGE]
        # 2 GB scaled = 8 MB = 4 fully-occupied guest frame regions
        assert len(populated) == SCALE.bytes(2 * GB) // (2 * 1024 * 1024)

    def test_host_sampler_consumes_mirror(self):
        # hawkeye-4kb host: backing stays base-mapped, so the mirrored
        # coverage must surface as host promotion candidates
        hyp = make_hypervisor(32 * GB, "hawkeye-4kb", SCALE)
        vm = make_vm(hyp, "v", 8 * GB, "linux-4kb", SCALE)
        vm.spawn(Alloc(SCALE.bytes(2 * GB)))
        for _ in range(31):
            hyp.run_epoch()
        amap = hyp.host.policy.access_maps.get(vm.host_proc.pid)
        assert amap is not None and len(amap) > 0

    def test_loads_empty(self):
        hyp = make_hypervisor(32 * GB, "linux-4kb", SCALE)
        vm = make_vm(hyp, "v", 8 * GB, "linux-4kb", SCALE)
        assert _HostMirrorProfile(vm).loads(hyp.host, vm.host_proc) == []


class TestSwapDrain:
    def setup_overcommit(self):
        hyp = make_hypervisor(8 * GB, "linux-4kb", SCALE, swap_bytes_full=32 * GB)
        vm1 = make_vm(hyp, "a", 8 * GB, "linux-4kb", SCALE)
        vm2 = make_vm(hyp, "b", 8 * GB, "linux-4kb", SCALE)
        return hyp, vm1, vm2

    def test_overcommit_swaps_then_drains_after_free(self):
        hyp, vm1, vm2 = self.setup_overcommit()
        r1 = vm1.spawn(Alloc(SCALE.bytes(6 * GB)))
        r2 = vm2.spawn(Alloc(SCALE.bytes(6 * GB), free_after=True))
        hyp.run_epoch()
        assert hyp.host.swap.swap_outs > 0
        # vm2 freed its memory: balloon it out so the host can breathe
        hyp.enable_ballooning(pages_per_sec=1e9)
        swapped_before = len(hyp.host.swap.swapped)
        for _ in range(30):
            hyp.run_epoch()
        assert len(hyp.host.swap.swapped) < swapped_before
        assert hyp.host.swap.swap_ins > 0

    def test_drain_respects_reserve(self):
        hyp, vm1, vm2 = self.setup_overcommit()
        vm1.spawn(Alloc(SCALE.bytes(6 * GB)))
        vm2.spawn(Alloc(SCALE.bytes(6 * GB)))
        hyp.run_epoch()
        for _ in range(10):
            hyp.run_epoch()
        # the host stays near-full: the drain must not dip into the reserve
        reserve = int(hyp.host.buddy.total_pages * hyp.SWAP_DRAIN_RESERVE)
        assert hyp.host.buddy.free_pages <= max(reserve * 3, 2048)

    def test_slowdown_reflects_swapped_share(self):
        hyp, vm1, vm2 = self.setup_overcommit()
        vm1.spawn(Alloc(SCALE.bytes(7 * GB)))
        vm2.spawn(Alloc(SCALE.bytes(7 * GB)))
        for _ in range(3):
            hyp.run_epoch()
        total_swapped = len(hyp.host.swap.swapped)
        if total_swapped:
            assert (vm1.guest.external_slowdown > 0
                    or vm2.guest.external_slowdown > 0)
