"""Integration test: the Figure 1 bloat story at small scale.

Linux runs out of memory during the re-insert phase because khugepaged
re-collapses the sparsely-populated old heap into zero-filled bloat;
HawkEye recovers the bloat under pressure and completes.
"""

import pytest

from repro.errors import OutOfMemoryError
from repro.experiments import Scale, make_kernel, useful_bytes
from repro.units import GB
from repro.workloads.redis import RedisFig1

SCALE = Scale(1 / 256)


import functools


@functools.lru_cache(maxsize=None)
def run_fig1(policy):
    kernel = make_kernel(48 * GB, policy, SCALE)
    wl = RedisFig1(scale=SCALE.factor)
    run = kernel.spawn(wl)
    oom = False
    try:
        kernel.run(max_epochs=4000)
    except OutOfMemoryError:
        oom = True
    return kernel, run, oom


def test_linux_ooms_with_bloat():
    kernel, run, oom = run_fig1("linux-2mb")
    assert oom, "Linux must hit OOM during P3"
    proc = run.proc
    bloat = proc.rss_pages() * 4096 - useful_bytes(kernel, proc)
    assert bloat > 0.1 * SCALE.bytes(48 * GB), "substantial zero-filled bloat"


def test_ingens_ooms_later_with_less_bloat():
    _, _, linux_oom = run_fig1("linux-2mb")
    kernel, run, oom = run_fig1("ingens-90")
    assert linux_oom and oom, "both baselines hit OOM in Figure 1"
    # Ingens's conservative phase slows bloat growth: more useful data
    # survives at the memory limit than under Linux (28 GB vs 20 GB).
    kernel_l, run_l, _ = run_fig1("linux-2mb")
    useful_ingens = useful_bytes(kernel, run.proc)
    useful_linux = useful_bytes(kernel_l, run_l.proc)
    assert useful_ingens > useful_linux


def test_hawkeye_survives_and_recovers():
    kernel, run, oom = run_fig1("hawkeye-g")
    assert not oom, "HawkEye must complete P3 without OOM"
    assert run.finished
    assert kernel.stats.bloat_pages_recovered > 0


def test_hawkeye_rss_tracks_useful_data():
    kernel, run, _ = run_fig1("hawkeye-g")
    proc = run.proc
    rss = proc.rss_pages() * 4096
    useful = useful_bytes(kernel, proc)
    # after recovery, bloat is a small fraction of RSS
    assert (rss - useful) / rss < 0.35
