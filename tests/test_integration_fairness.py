"""Integration tests: multi-process fairness (Figures 7 and 8 shapes)."""

import pytest

from repro.experiments import Scale, fragment, make_kernel
from repro.units import GB, SEC
from repro.workloads.compute import ComputeWorkload
from repro.workloads.redis import RedisLight

SCALE = Scale(1 / 256)


def tlb_sensitive(name="sens", work_s=300.0):
    return ComputeWorkload(
        name, footprint_bytes=8 * GB, work_us=work_s * SEC,
        access_rate=12.0, hot_start=0.5, hot_len=0.5, scale=SCALE.factor,
    )


def run_identical_instances(policy, n=3):
    kernel = make_kernel(96 * GB, policy, SCALE)
    fragment(kernel)
    runs = [kernel.spawn(tlb_sensitive(f"inst-{i}")) for i in range(n)]
    kernel.run_epochs(120)
    return kernel, runs


class TestIdenticalWorkloads:
    """Figure 7: Linux promotes one process at a time; HawkEye spreads."""

    def promotion_spread(self, kernel, runs):
        counts = [run.proc.stats.promotions for run in runs]
        return counts

    def test_linux_serial_imbalance(self):
        kernel, runs = run_identical_instances("linux-2mb")
        counts = self.promotion_spread(kernel, runs)
        assert max(counts) > 0
        # FCFS: the first process hoards the early promotions
        assert counts[0] >= max(counts[1:]) and counts[0] > min(counts[1:])

    def test_hawkeye_balanced(self):
        kernel, runs = run_identical_instances("hawkeye-g")
        counts = self.promotion_spread(kernel, runs)
        assert max(counts) > 0
        assert max(counts) - min(counts) <= max(2, max(counts) // 3)


class TestHeterogeneousWorkloads:
    """Figure 8: a lightly-loaded Redis must not soak up huge pages."""

    def run_pair(self, policy, redis_first):
        kernel = make_kernel(96 * GB, policy, SCALE)
        fragment(kernel)
        redis = RedisLight(scale=SCALE.factor, serve_us=500 * SEC,
                           insert_rate_pages_per_sec=5e6)
        sens = tlb_sensitive(work_s=250.0)
        if redis_first:
            r1, r2 = kernel.spawn(redis), kernel.spawn(sens)
        else:
            r2, r1 = kernel.spawn(sens), kernel.spawn(redis)
        kernel.run_epochs(400)
        return kernel, r1, r2

    def test_linux_order_dependence(self):
        """Linux's FCFS khugepaged serves whoever launched first."""
        _, _, sens_after = self.run_pair("linux-2mb", redis_first=True)
        _, _, sens_before = self.run_pair("linux-2mb", redis_first=False)
        assert (
            sens_before.proc.stats.promotions
            > sens_after.proc.stats.promotions
        )

    @pytest.mark.parametrize("redis_first", [True, False])
    def test_hawkeye_pmu_order_independent(self, redis_first):
        kernel, redis_run, sens_run = self.run_pair("hawkeye-pmu", redis_first)
        # the TLB-sensitive process gets its hot regions promoted and its
        # overhead driven down, regardless of launch order
        assert sens_run.proc.stats.promotions > 0
        assert sens_run.proc.mmu_overhead < 0.05
