"""Integration tests: end-to-end policy behaviour at small scale.

These lock in the paper's qualitative results — who wins, in which
scenario — as regression tests.  Exact magnitudes live in benchmarks/.
"""

import pytest

from repro.experiments import Scale, fragment, make_kernel
from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.base import (
    AccessProfile,
    MmapOp,
    Phase,
    RegionAccessSpec,
    TouchOp,
    Workload,
)
from repro.workloads.compute import ComputeWorkload
from repro.workloads.microbench import AllocTouchFree

SCALE = Scale(1 / 256)


def finish(kernel, run, max_epochs=4000):
    kernel.run(max_epochs=max_epochs)
    assert run.finished, f"did not finish under {kernel.policy.name}"
    return run.elapsed_us


def high_va_workload(work_s=400.0):
    """TLB-hungry workload with its hot region in high VAs (Figure 6)."""
    return ComputeWorkload(
        "hot-high", footprint_bytes=12 * GB, work_us=work_s * SEC,
        access_rate=10.0, hot_start=0.6, hot_len=0.4, scale=SCALE.factor,
    )


class TestFaultBoundWorkloads:
    """Table 1's shape: THP slashes fault counts; Ingens does not."""

    def test_fault_counts(self):
        results = {}
        for policy in ("linux-4kb", "linux-2mb", "ingens-90", "hawkeye-g"):
            kernel = make_kernel(16 * GB, policy, SCALE)
            run = kernel.spawn(AllocTouchFree(10 * GB, rounds=2, scale=SCALE.factor))
            finish(kernel, run)
            results[policy] = run.proc.stats
        base_faults = results["linux-4kb"].faults
        assert results["linux-2mb"].faults == base_faults // 512
        assert results["ingens-90"].faults == base_faults
        assert results["hawkeye-g"].faults == base_faults // 512

    def test_hawkeye_huge_faults_cheap(self):
        kernel_linux = make_kernel(16 * GB, "linux-2mb", SCALE, boot_zeroed=False)
        kernel_hawk = make_kernel(16 * GB, "hawkeye-g", SCALE, boot_zeroed=False)
        kernel_hawk.run_epochs(60)  # pre-zero warm-up
        wl = lambda: AllocTouchFree(10 * GB, rounds=1, scale=SCALE.factor)
        run_l = kernel_linux.spawn(wl())
        finish(kernel_linux, run_l)
        run_h = kernel_hawk.spawn(wl())
        finish(kernel_hawk, run_h)
        avg_linux = run_l.proc.stats.fault_time_us / run_l.proc.stats.faults
        avg_hawk = run_h.proc.stats.fault_time_us / run_h.proc.stats.faults
        assert avg_linux == pytest.approx(465, rel=0.05)
        assert avg_hawk == pytest.approx(13, rel=0.3)


import functools


@functools.lru_cache(maxsize=None)
def _run_fragmented(policy):
    kernel = make_kernel(48 * GB, policy, SCALE)
    fragment(kernel)
    run = kernel.spawn(high_va_workload())
    kernel.run(max_epochs=3000)
    return run


class TestFragmentedRecovery:
    """Figure 5/6 shape: after fragmentation, HawkEye recovers MMU
    overheads faster than VA-order scanners for high-VA hot spots."""

    def run_policy(self, policy):
        return _run_fragmented(policy)

    def test_hawkeye_faster_than_linux(self):
        linux = self.run_policy("linux-2mb")
        hawkeye = self.run_policy("hawkeye-g")
        assert hawkeye.finished and linux.finished
        assert hawkeye.elapsed_us < linux.elapsed_us

    def test_time_saved_per_promotion_better(self):
        """Figure 5 (right): HawkEye needs fewer promotions per second
        of execution time saved."""
        baseline = self.run_policy("linux-4kb")
        linux = self.run_policy("linux-2mb")
        hawkeye = self.run_policy("hawkeye-g")
        saved_linux = baseline.elapsed_us - linux.elapsed_us
        saved_hawk = baseline.elapsed_us - hawkeye.elapsed_us
        eff_linux = saved_linux / max(linux.proc.stats.promotions, 1)
        eff_hawk = saved_hawk / max(hawkeye.proc.stats.promotions, 1)
        assert eff_hawk > eff_linux


class TestUniformWorkloadsParity:
    """§4: for uniformly-hot workloads HawkEye ≈ Linux (no regression)."""

    def test_parity(self):
        times = {}
        for policy in ("linux-2mb", "hawkeye-g"):
            kernel = make_kernel(16 * GB, policy, SCALE)
            wl = ComputeWorkload(
                "uniform", footprint_bytes=8 * GB, work_us=120 * SEC,
                access_rate=10.0, scale=SCALE.factor,
            )
            run = kernel.spawn(wl)
            times[policy] = finish(kernel, run)
        ratio = times["hawkeye-g"] / times["linux-2mb"]
        assert ratio == pytest.approx(1.0, abs=0.1)
