"""Stress scenario: a mixed multi-tenant day on one machine.

Every policy must survive a realistic mixed scenario — a latency-bound
server, a churning cache, batch compute arriving later, and memory
fragmentation throughout — with the kernel invariants intact at the end.
This is the no-crash/no-leak regression net under the most interaction
pressure the simulator can generate.
"""

import pytest

from repro.errors import OutOfMemoryError
from repro.experiments import POLICIES, Scale, fragment, make_kernel
from repro.units import GB, PAGES_PER_HUGE, SEC
from repro.workloads.graph import Graph500
from repro.workloads.microbench import AllocTouchFree
from repro.workloads.redis import RedisChurn, RedisLight

SCALE = Scale(1 / 256)


def check_invariants(kernel):
    """Cross-check page tables, rmap and the buddy allocator."""
    mapped = 0
    for proc in kernel.processes:
        pt = proc.page_table
        for vpn, pte in pt.base.items():
            if pte.shared_zero:
                assert pte.frame == kernel.zero_registry.zero_frame
            else:
                assert kernel.frames.allocated[pte.frame], (proc.name, vpn)
                mapped += 1
        for hvpn, hpte in pt.huge.items():
            assert hpte.frame % PAGES_PER_HUGE == 0
            assert kernel.frames.allocated[hpte.frame:hpte.frame + 512].all()
            mapped += PAGES_PER_HUGE
    overhead = kernel.fragmenter.cache_pages + 1  # file cache + zero frame
    assert kernel.frames.allocated_count() == mapped + overhead
    assert kernel.buddy.free_pages + mapped + overhead == kernel.buddy.total_pages


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_mixed_tenancy_stress(policy):
    kernel = make_kernel(96 * GB, policy, SCALE)
    fragment(kernel, keep_fraction=0.03)
    runs = [
        kernel.spawn(RedisLight(scale=SCALE.factor, serve_us=400 * SEC,
                                insert_rate_pages_per_sec=4e6)),
        kernel.spawn(RedisChurn(scale=SCALE.factor, dataset_bytes=16 * GB,
                                insert_rate_pages_per_sec=4e6,
                                settle_us=60 * SEC, serve_us=60 * SEC)),
    ]
    kernel.run_epochs(30)
    runs.append(kernel.spawn(Graph500(scale=SCALE.factor, work_us=200 * SEC)))
    runs.append(kernel.spawn(AllocTouchFree(4 * GB, rounds=3, scale=SCALE.factor)))
    oom = False
    try:
        kernel.run(max_epochs=1500)
    except OutOfMemoryError:
        oom = True
    # with ~72 GB of peak demand on 96 GB, nobody should OOM
    assert not oom, policy
    assert all(r.finished for r in runs), policy
    check_invariants(kernel)
    # the machine ends in a sane state: memory was actually released
    assert kernel.allocated_fraction() < 0.9, policy
