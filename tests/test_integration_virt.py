"""Integration tests: virtualised configurations (Figures 9 and 11 shapes)."""

import pytest

from repro.experiments import Scale, make_hypervisor, make_vm
from repro.units import GB, SEC
from repro.workloads.base import ContentSpec, FreeOp, MmapOp, Phase, TouchOp, Workload
from repro.workloads.npb import NPBWorkload

SCALE = Scale(1 / 128)


def run_config(host_policy, guest_policy, work_s=200.0):
    hyp = make_hypervisor(96 * GB, host_policy, SCALE)
    hyp.host.fragmenter.fragment(keep_fraction=0.05)
    vm = make_vm(hyp, "vm1", 48 * GB, guest_policy, SCALE)
    vm.guest.fragmenter.fragment(keep_fraction=0.05)
    run = vm.spawn(NPBWorkload("cg.D", scale=SCALE.factor, work_us=work_s * SEC))
    hyp.run(max_epochs=4000)
    assert run.finished
    return run.elapsed_us


class TestFigure9Shape:
    def test_hawkeye_guest_beats_linux(self):
        linux = run_config("linux-2mb", "linux-2mb")
        hawk_guest = run_config("linux-2mb", "hawkeye-g")
        assert hawk_guest < linux

    def test_hawkeye_both_at_least_as_good_as_guest_only(self):
        hawk_guest = run_config("linux-2mb", "hawkeye-g")
        hawk_both = run_config("hawkeye-g", "hawkeye-g")
        assert hawk_both <= hawk_guest * 1.1


class ChurnGuest(Workload):
    """Guest that allocates, frees, then idles (free memory for sharing)."""

    name = "churn"

    def __init__(self, nbytes, hold_s=400.0):
        self.nbytes = nbytes
        self.hold_s = hold_s

    def build_phases(self):
        return [
            Phase("alloc", ops=[
                MmapOp("heap", self.nbytes),
                TouchOp("heap", content=ContentSpec(first_nonzero=0)),
                FreeOp("heap"),
            ]),
            Phase("idle", duration_us=self.hold_s * SEC),
        ]


class TestFigure11Channel:
    """Pre-zeroing + KSM returns guest-freed memory like a balloon."""

    def _freed_to_host(self, guest_policy, balloon):
        hyp = make_hypervisor(96 * GB, "linux-2mb", SCALE)
        vm = make_vm(hyp, "vm1", 24 * GB, guest_policy, SCALE)
        hyp.enable_ksm(pages_per_sec=SCALE.rate(1e6))
        if balloon:
            hyp.enable_ballooning(pages_per_sec=SCALE.rate(1e6))
        if guest_policy.startswith("hawkeye"):
            vm.guest.policy.prezero._limiter.per_second = SCALE.rate(1e6)
        vm.spawn(ChurnGuest(SCALE.bytes(12 * GB), hold_s=120.0))
        hyp.run(max_epochs=400)
        return vm.host_proc.rss_pages()

    def test_hawkeye_ksm_matches_ballooning(self):
        transparent = self._freed_to_host("hawkeye-g", balloon=False)
        ballooned = self._freed_to_host("linux-2mb", balloon=True)
        no_help = self._freed_to_host("linux-2mb", balloon=False)
        # the transparent channel recovers most of what ballooning does
        assert transparent < 0.4 * no_help
        assert transparent <= ballooned + 0.2 * no_help
