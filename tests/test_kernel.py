"""Unit tests for kernel mechanisms: promotion, demotion, dedup, madvise."""

import pytest

from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import spawn_simple
from tests.test_fault import make_proc


def touch_region(kernel, proc, vma, n=PAGES_PER_HUGE):
    for vpn in range(vma.start, vma.start + n):
        kernel.fault(proc, vpn)


class TestPromotion:
    def test_in_place_promotion_of_demoted_region(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)  # huge fault
        hvpn = vma.start >> 9
        kernel_thp.demote_region(proc, hvpn)
        assert not proc.region(hvpn).is_huge
        cost = kernel_thp.promote_region(proc, hvpn)
        assert cost == pytest.approx(kernel_thp.costs.remap_us)
        assert kernel_thp.stats.inplace_promotions == 1
        assert proc.region(hvpn).is_huge

    def test_collapse_promotion_copies_and_zero_fills(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        # fault only half the region with base pages
        touch_region(kernel4k, proc, vma, n=256)
        frame = proc.page_table.base[vma.start].frame
        kernel4k.frames.write(frame, first_nonzero=3, tag=777)
        hvpn = vma.start >> 9
        cost = kernel4k.promote_region(proc, hvpn)
        assert cost is not None and cost > kernel4k.costs.remap_us
        assert kernel4k.stats.collapse_promotions == 1
        huge_pte = proc.page_table.huge[hvpn]
        # copied page keeps its content, the rest is zero-filled (bloat!)
        assert kernel4k.frames.content_tag[huge_pte.frame] == 777
        assert kernel4k.frames.is_zero(huge_pte.frame + 300)
        # only one page holds data; the 511 others (255 never-written
        # touched pages + 256 zero-filled by collapse) are zero
        zeros, _ = kernel4k.count_zero_pages(proc, hvpn)
        assert zeros == 511

    def test_promotion_requires_residency(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        assert kernel4k.promote_region(proc, vma.start >> 9) is None

    def test_promotion_charges_stall_to_process(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        touch_region(kernel4k, proc, vma)
        proc.fault_time_epoch_us = 0.0
        kernel4k.promote_region(proc, vma.start >> 9)
        assert proc.fault_time_epoch_us == pytest.approx(
            kernel4k.costs.promotion_stall_us
        )


class TestDemotionAndDedup:
    def test_demote_breaks_mapping_not_frames(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        hvpn = vma.start >> 9
        block = proc.page_table.huge[hvpn].frame
        kernel_thp.demote_region(proc, hvpn)
        assert proc.page_table.translate(vma.start + 5) == (block + 5, False)
        assert kernel_thp.stats.demotions == 1

    def test_dedup_zero_pages_recover_memory(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)  # huge-mapped, all zero content
        hvpn = vma.start >> 9
        # application wrote into 10 pages only
        block = proc.page_table.huge[hvpn].frame
        for i in range(10):
            kernel_thp.frames.write(block + i, first_nonzero=0)
        free_before = kernel_thp.buddy.free_pages
        kernel_thp.demote_region(proc, hvpn)
        recovered, scanned = kernel_thp.dedup_zero_pages(proc, hvpn)
        assert recovered == PAGES_PER_HUGE - 10
        assert kernel_thp.buddy.free_pages == free_before + recovered
        # RSS excludes the shared-zero mappings now
        assert proc.rss_pages() == 10
        # but the pages are still mapped (reads hit the zero frame)
        assert proc.page_table.is_mapped(vma.start + 500)

    def test_dedup_scan_cost_proportional_to_bloat(self, kernel_thp):
        """§3.2: in-use pages cost ~10 bytes, bloat pages 4096."""
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        hvpn = vma.start >> 9
        block = proc.page_table.huge[hvpn].frame
        for i in range(500):  # 500 in-use, 12 bloat pages
            kernel_thp.frames.write(block + i, first_nonzero=9)
        kernel_thp.demote_region(proc, hvpn)
        _, scanned = kernel_thp.dedup_zero_pages(proc, hvpn)
        assert scanned == 500 * 10 + 12 * 4096


class TestMadvise:
    def test_madvise_breaks_huge_and_frees(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        free_before = kernel_thp.buddy.free_pages
        kernel_thp.madvise_free(proc, vma.start, 100)
        assert kernel_thp.buddy.free_pages == free_before + 100
        region = proc.region(vma.start >> 9)
        assert not region.is_huge
        assert region.resident == PAGES_PER_HUGE - 100
        assert not proc.page_table.is_mapped(vma.start + 50)
        assert proc.page_table.is_mapped(vma.start + 200)

    def test_madvised_frames_land_on_dirty_lists(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        block = proc.page_table.huge[vma.start >> 9].frame
        for i in range(100):
            kernel_thp.frames.write(block + i, first_nonzero=0)
        zeroed_before = kernel_thp.buddy.free_zeroed_pages()
        kernel_thp.madvise_free(proc, vma.start, 100)
        # freed dirty pages must not appear on the zero lists
        assert kernel_thp.buddy.free_zeroed_pages() == zeroed_before


class TestEpochLoop:
    def test_run_completes_workload(self, kernel_hawkeye):
        run = spawn_simple(kernel_hawkeye, heap_mb=8, work_s=3.0)
        epochs = kernel_hawkeye.run(max_epochs=100)
        assert run.finished
        assert epochs < 100
        assert kernel_hawkeye.stats.epochs == epochs

    def test_sampler_updates_region_coverage(self, kernel_hawkeye):
        run = spawn_simple(kernel_hawkeye, heap_mb=8, work_s=120.0)
        kernel_hawkeye.run_epochs(31)
        proc = run.proc
        sampled = [r for r in proc.regions.values() if r.coverage_ema > 0]
        assert sampled, "30-second sampling must have recorded coverage"

    def test_epoch_hooks_called(self, kernel4k):
        seen = []
        kernel4k.epoch_hooks.append(lambda k: seen.append(k.stats.epochs))
        kernel4k.run_epochs(3)
        assert seen == [1, 2, 3]

    def test_allocated_fraction_and_fmfi(self, kernel4k):
        assert kernel4k.allocated_fraction() < 0.01
        # the reserved zero frame breaks exactly one order-10 block
        assert kernel4k.fmfi() < 0.05


class TestConfigValidation:
    def test_rejects_tiny_memory(self):
        from repro.errors import ConfigError
        from repro.kernel.kernel import KernelConfig

        with pytest.raises(ConfigError):
            KernelConfig(mem_bytes=1024)

    def test_rejects_bad_epoch(self):
        from repro.errors import ConfigError
        from repro.kernel.kernel import KernelConfig

        with pytest.raises(ConfigError):
            KernelConfig(mem_bytes=64 * MB, epoch_us=0)

    def test_rejects_bad_alpha(self):
        from repro.errors import ConfigError
        from repro.kernel.kernel import KernelConfig

        with pytest.raises(ConfigError):
            KernelConfig(mem_bytes=64 * MB, ema_alpha=1.5)

    def test_rejects_negative_swap(self):
        from repro.errors import ConfigError
        from repro.kernel.kernel import KernelConfig

        with pytest.raises(ConfigError):
            KernelConfig(mem_bytes=64 * MB, swap_bytes=-1)

    def test_rejects_zero_sample_period(self):
        from repro.errors import ConfigError
        from repro.kernel.kernel import KernelConfig

        with pytest.raises(ConfigError):
            KernelConfig(mem_bytes=64 * MB, sample_period=0)
