"""Unit tests for the background-thread rate limiter."""

import pytest

from repro.kernel.kthread import RateLimiter
from repro.units import SEC


def test_per_epoch_budget():
    limiter = RateLimiter(per_second=100.0, epoch_us=SEC)
    assert limiter.per_epoch == 100.0
    limiter.refill()
    assert limiter.available == 100.0


def test_take_consumes_tokens():
    limiter = RateLimiter(10.0)
    limiter.refill()
    for _ in range(10):
        assert limiter.take()
    assert not limiter.take()


def test_carryover_capped_at_two_epochs():
    limiter = RateLimiter(10.0)
    for _ in range(5):
        limiter.refill()
    assert limiter.available == 20.0


def test_fractional_rates_accumulate():
    """Scaled experiments use sub-1/epoch rates; they must still fire."""
    limiter = RateLimiter(0.2)
    fired = 0
    for _ in range(50):
        limiter.refill()
        while limiter.take():
            fired += 1
    assert fired == pytest.approx(10, abs=2)


def test_bulk_take():
    limiter = RateLimiter(512.0)
    limiter.refill()
    assert limiter.take(512)
    assert not limiter.take(1)


def test_sub_second_epochs_scale_budget():
    limiter = RateLimiter(100.0, epoch_us=SEC / 10)
    limiter.refill()
    assert limiter.available == pytest.approx(10.0)
