"""Unit tests for huge-page limits (§3.5 starvation extension)."""

import pytest

from repro.core.hawkeye import HawkEyePolicy
from repro.core.limits import HugePageLimits
from repro.kernel.kernel import Kernel
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process
from tests.conftest import small_config
from tests.test_fault import make_proc


def test_exact_and_prefix_limits():
    limits = HugePageLimits({"redis": 4, "batch-*": 2})
    redis = Process("redis")
    batch = Process("batch-7")
    other = Process("other")
    assert limits.limit_for(redis) == 4
    assert limits.limit_for(batch) == 2
    assert limits.limit_for(other) is None


def test_negative_cap_rejected():
    with pytest.raises(ValueError):
        HugePageLimits({"x": -1})


def test_may_promote_counts_held_pages():
    limits = HugePageLimits({"p": 2})
    proc = Process("p")
    assert limits.may_promote(proc)
    proc.page_table.map_huge(1, 512)
    proc.page_table.map_huge(2, 1024)
    assert not limits.may_promote(proc)
    assert limits.refusals == 1


def test_exact_beats_prefix():
    limits = HugePageLimits({"svc-*": 1, "svc-db": 10})
    assert limits.limit_for(Process("svc-db")) == 10
    assert limits.limit_for(Process("svc-web")) == 1


def test_hawkeye_fault_path_respects_limit():
    kernel = Kernel(
        small_config(64),
        lambda k: HawkEyePolicy(k, variant="g", huge_page_limits={"t": 1}),
    )
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    kernel.fault(proc, vma.start)  # first region: huge allowed
    assert proc.stats.huge_faults == 1
    kernel.fault(proc, vma.start + PAGES_PER_HUGE)  # cap reached: base
    assert proc.stats.huge_faults == 1
    assert kernel.policy.limits.refusals >= 1


def test_unlimited_by_default():
    kernel = Kernel(small_config(64), lambda k: HawkEyePolicy(k, variant="g"))
    assert kernel.policy.limits is None
