"""Unit tests for huge-page limits (§3.5 starvation extension)."""

import pytest

from repro.core.hawkeye import HawkEyePolicy
from repro.core.limits import HugePageLimits
from repro.kernel.kernel import Kernel
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process
from tests.conftest import small_config
from tests.test_fault import make_proc


def test_exact_and_prefix_limits():
    limits = HugePageLimits({"redis": 4, "batch-*": 2})
    redis = Process("redis")
    batch = Process("batch-7")
    other = Process("other")
    assert limits.limit_for(redis) == 4
    assert limits.limit_for(batch) == 2
    assert limits.limit_for(other) is None


def test_negative_cap_rejected():
    with pytest.raises(ValueError):
        HugePageLimits({"x": -1})


def test_may_promote_counts_held_pages():
    limits = HugePageLimits({"p": 2})
    proc = Process("p")
    assert limits.may_promote(proc)
    proc.page_table.map_huge(1, 512)
    proc.page_table.map_huge(2, 1024)
    assert not limits.may_promote(proc)
    assert limits.refusals == 1


def test_exact_beats_prefix():
    limits = HugePageLimits({"svc-*": 1, "svc-db": 10})
    assert limits.limit_for(Process("svc-db")) == 10
    assert limits.limit_for(Process("svc-web")) == 1


def test_hawkeye_fault_path_respects_limit():
    kernel = Kernel(
        small_config(64),
        lambda k: HawkEyePolicy(k, variant="g", huge_page_limits={"t": 1}),
    )
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    kernel.fault(proc, vma.start)  # first region: huge allowed
    assert proc.stats.huge_faults == 1
    kernel.fault(proc, vma.start + PAGES_PER_HUGE)  # cap reached: base
    assert proc.stats.huge_faults == 1
    assert kernel.policy.limits.refusals >= 1


def test_unlimited_by_default():
    kernel = Kernel(small_config(64), lambda k: HawkEyePolicy(k, variant="g"))
    assert kernel.policy.limits is None


# --------------------------------------------------------------------- #
# group caps (cgroup-style, summed across live members)                  #
# --------------------------------------------------------------------- #


def _named_proc(kernel, name, nbytes=8 * MB):
    from repro.tlb.perf import PMUCounters

    proc = Process(name)
    kernel.processes.append(proc)
    kernel.pmu[proc.pid] = PMUCounters()
    vma = kernel.mmap(proc, nbytes, "heap")
    return proc, vma


def test_group_cap_sums_across_members():
    limits = HugePageLimits(group_limits={"svc-*": 2})
    a, b = Process("svc-a"), Process("svc-b")
    assert limits.may_promote(a)
    a.page_table.map_huge(1, 512)
    assert limits.may_promote(b)
    b.page_table.map_huge(40, 1024)
    # the group now holds 2 huge pages in total: both members blocked.
    assert not limits.may_promote(a)
    assert not limits.may_promote(b)
    assert limits.refusals == 2
    assert limits.group_refusals == 2
    assert limits.group_stats() == {"svc-": (2, 2)}


def test_group_cap_exact_name_spelling_equivalent():
    with_star = HugePageLimits(group_limits={"svc-*": 1})
    without = HugePageLimits(group_limits={"svc-": 1})
    assert with_star.group_stats() == without.group_stats()


def test_group_cap_restart_churn_does_not_leak():
    """Satellite: a killed-and-restarted tenant must not pin its old
    holdings against the group cap."""
    kernel = Kernel(
        small_config(64),
        lambda k: HawkEyePolicy(k, variant="g",
                                huge_page_group_limits={"svc-*": 1}),
    )
    limits = kernel.policy.limits
    proc, vma = _named_proc(kernel, "svc-a")
    kernel.fault(proc, vma.start)
    assert proc.stats.huge_faults == 1
    assert limits.group_held("svc-") == 1
    # cap reached: a sibling is refused.
    sibling, svma = _named_proc(kernel, "svc-b")
    kernel.fault(sibling, svma.start)
    assert sibling.stats.huge_faults == 0
    assert limits.group_refusals >= 1

    # kill-and-restart churn: teardown must free the group budget...
    kernel.exit_process(proc)
    assert limits.group_held("svc-") == 0
    # ...so the restarted incarnation gets the huge page again.
    fresh, fvma = _named_proc(kernel, "svc-a")
    kernel.fault(fresh, fvma.start)
    assert fresh.stats.huge_faults == 1
    assert limits.group_held("svc-") == 1


def test_group_cap_restart_churn_unbound_registry():
    """Same property without a kernel: exited members are pruned."""
    limits = HugePageLimits(group_limits={"svc-*": 1})
    old = Process("svc-a")
    assert limits.may_promote(old)
    old.page_table.map_huge(1, 512)
    assert not limits.may_promote(old)
    old.finished = True  # torn down: page table cleared, run finished
    old.page_table.clear()
    fresh = Process("svc-a")
    assert limits.may_promote(fresh)
    assert limits.group_held("svc-") == 0


def test_limits_telemetry_family():
    """Satellite: refusals and group held/cap surface as limits.* metrics."""
    from repro.metrics import telemetry as tmod

    kernel = Kernel(
        small_config(64),
        lambda k: HawkEyePolicy(k, variant="g",
                                huge_page_limits={"t": 0},
                                huge_page_group_limits={"svc-*": 3}),
    )
    sampler = tmod.attach(kernel)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    kernel.fault(proc, vma.start)  # cap 0: refused, falls back to base
    assert proc.stats.huge_faults == 0
    kernel.run_epochs(2)
    art = sampler.telemetry()
    tmod.detach(kernel)
    counters = art.scrapes[-1]["counters"]["limit_refusals_total"]
    assert counters["kind=total"] >= 1
    gauges = art.scrapes[-1]["gauges"]
    assert gauges["limit_group_cap"]["group=svc-"] == 3
    assert gauges["limit_group_held"]["group=svc-"] == 0


def test_no_limits_no_telemetry_family():
    """Zero-cost contract: limitless kernels scrape no limits.* family."""
    from repro.metrics import telemetry as tmod

    kernel = Kernel(small_config(64), lambda k: HawkEyePolicy(k, variant="g"))
    sampler = tmod.attach(kernel)
    kernel.run_epochs(2)
    art = sampler.telemetry()
    tmod.detach(kernel)
    assert "limit_refusals_total" not in art.scrapes[-1]["counters"]
    assert "limit_group_held" not in art.scrapes[-1]["gauges"]
