"""Tests for per-VMA huge-page hints and khugepaged's max_ptes_none."""

import pytest

from repro.kernel.kernel import Kernel
from repro.policies.linux import LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.vma import HugePageHint
from tests.conftest import small_config
from tests.test_fault import make_proc


class TestHints:
    def test_nohugepage_forces_base_under_thp(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.madvise_hugepage(proc, "heap", HugePageHint.NEVER)
        kernel_thp.fault(proc, vma.start)
        assert proc.stats.huge_faults == 0

    def test_nohugepage_blocks_promotion(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.madvise_hugepage(proc, "heap", HugePageHint.NEVER)
        for i in range(PAGES_PER_HUGE):
            kernel_thp.fault(proc, vma.start + i)
        assert not kernel_thp.can_promote(proc, vma.start >> 9)
        kernel_thp.run_epochs(3)
        assert kernel_thp.stats.promotions == 0

    def test_hugepage_hint_overrides_base_only_policy(self, kernel4k):
        """MADV_HUGEPAGE maps huge even under a policy that prefers base."""
        proc, vma = make_proc(kernel4k)
        kernel4k.madvise_hugepage(proc, "heap", HugePageHint.ALWAYS)
        kernel4k.fault(proc, vma.start)
        assert proc.stats.huge_faults == 1

    def test_default_hint_defers_to_policy(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        kernel4k.fault(proc, vma.start)
        assert proc.stats.huge_faults == 0

    def test_madvise_unknown_region_raises(self, kernel4k):
        from repro.errors import InvalidAddressError

        proc, _ = make_proc(kernel4k)
        with pytest.raises(InvalidAddressError):
            kernel4k.madvise_hugepage(proc, "nope", HugePageHint.ALWAYS)


class TestMaxPtesNone:
    def make(self, max_ptes_none):
        return Kernel(
            small_config(64),
            lambda k: LinuxTHPPolicy(k, promote_per_sec=100.0,
                                     max_ptes_none=max_ptes_none),
        )

    def fault_partial(self, kernel, resident):
        kernel.fragmenter.fragment(keep_fraction=0.02)
        proc, vma = make_proc(kernel)
        for i in range(resident):
            kernel.fault(proc, vma.start + i)
        kernel.fragmenter.release_all()
        return proc, vma

    def test_default_collapses_around_holes(self):
        kernel = self.make(511)
        proc, vma = self.fault_partial(kernel, resident=1)
        kernel.run_epochs(2)
        assert proc.region(vma.start >> 9).is_huge

    def test_zero_requires_full_population(self):
        kernel = self.make(0)
        proc, vma = self.fault_partial(kernel, resident=511)
        kernel.run_epochs(2)
        assert not proc.region(vma.start >> 9).is_huge
        for i in range(511, PAGES_PER_HUGE):
            kernel.fault(proc, vma.start + i)
        kernel.run_epochs(2)
        assert proc.region(vma.start >> 9).is_huge

    def test_intermediate_threshold(self):
        kernel = self.make(64)
        proc, vma = self.fault_partial(kernel, resident=400)  # 112 holes > 64
        kernel.run_epochs(2)
        assert not proc.region(vma.start >> 9).is_huge
        for i in range(400, 460):  # holes: 52 <= 64
            kernel.fault(proc, vma.start + i)
        kernel.run_epochs(2)
        assert proc.region(vma.start >> 9).is_huge
