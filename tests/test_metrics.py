"""Unit tests for series recording and table formatting."""

import pytest

from repro.metrics.series import SeriesRecorder, TimeSeries
from repro.metrics.tables import format_table
from tests.conftest import spawn_simple


class TestTimeSeries:
    def test_append_and_aggregates(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 5.0), (2, 3.0)]:
            ts.append(t, v)
        assert ts.last() == 3.0
        assert ts.max() == 5.0
        assert ts.min() == 1.0
        assert len(ts) == 3

    def test_at_returns_latest_not_after(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (10, 2.0), (20, 3.0)]:
            ts.append(t, v)
        assert ts.at(5) == 1.0
        assert ts.at(10) == 2.0
        assert ts.at(100) == 3.0

    def test_empty_series(self):
        ts = TimeSeries("x")
        assert ts.last() == 0.0
        assert ts.max() == 0.0


class TestSeriesRecorder:
    def test_probes_sampled_each_epoch(self, kernel_hawkeye):
        rec = SeriesRecorder(kernel_hawkeye)
        rec.probe("rss", lambda k: sum(p.rss_pages() for p in k.processes))
        rec.probe("free", lambda k: k.buddy.free_pages)
        spawn_simple(kernel_hawkeye, heap_mb=4, work_s=3.0)
        kernel_hawkeye.run_epochs(5)
        assert len(rec["rss"]) == 5
        assert rec["rss"].last() == 1024
        # 1024 workload pages + the reserved canonical zero frame
        assert rec["free"].last() == 16 * 1024 - 1024 - 1

    def test_sampling_interval(self, kernel4k):
        rec = SeriesRecorder(kernel4k, every_epochs=2)
        rec.probe("epochs", lambda k: k.stats.epochs)
        kernel4k.run_epochs(6)
        assert len(rec["epochs"]) == 3


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 123456.0]],
            title="Table X",
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        assert "123,456" in lines[4]

    def test_float_rendering(self):
        out = format_table(["v"], [[0.123456], [12.3456], [0.0]])
        assert "0.123" in out
        assert "12.3" in out
