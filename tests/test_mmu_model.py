"""Unit tests for the per-epoch MMU overhead model.

Includes the calibration checks that tie the model to the paper's
measurements (Table 3, Table 9).
"""

import pytest

from repro.patterns import Pattern
from repro.tlb.mmu_model import MMUEpoch, MMUModel, RegionLoad
from repro.tlb.perf import PMUCounters


@pytest.fixture
def model() -> MMUModel:
    return MMUModel()


def load(touched=100, coverage=512, promoted=0.0, weight=1.0,
         pattern=Pattern.RANDOM, stride=8):
    return RegionLoad(touched, coverage, promoted, weight, pattern, stride)


def test_empty_loads_no_overhead(model):
    assert model.epoch([], access_rate=10.0).overhead == 0.0
    assert model.epoch([load()], access_rate=0.0).overhead == 0.0


def test_overhead_bounded(model):
    epoch = model.epoch([load(touched=10_000)], access_rate=1000.0)
    assert 0.0 < epoch.overhead < 1.0


def test_promotion_eliminates_overhead(model):
    """Fully-promoted working sets that fit the 2M TLB walk for free."""
    base = model.epoch([load(touched=100, promoted=0.0)], access_rate=30.0)
    huge = model.epoch([load(touched=100, promoted=1.0)], access_rate=30.0)
    assert base.overhead > 0.2
    assert huge.overhead == 0.0


def test_partial_promotion_interpolates(model):
    o = [
        model.epoch([load(touched=200, promoted=p)], access_rate=30.0).overhead
        for p in (0.0, 0.5, 1.0)
    ]
    assert o[0] > o[1] > o[2]


def test_sequential_pattern_negligible_overhead(model):
    """Table 9: identical coverage, sequential => <1% overhead."""
    random = model.epoch([load(touched=500)], access_rate=74.0)
    seq = model.epoch(
        [load(touched=500, pattern=Pattern.SEQUENTIAL)], access_rate=74.0
    )
    assert random.overhead > 0.5          # paper: 60 %
    assert seq.overhead < 0.01            # paper: < 1 %


def test_cg_d_calibration(model):
    """Table 3: cg.D ≈ 39 % at 4 KiB, ≈ 0 at 2 MiB."""
    cg = [load(touched=3800, coverage=512)]
    o4k = model.epoch(cg, access_rate=32.0).overhead
    assert o4k == pytest.approx(0.39, abs=0.05)
    o2m = model.epoch([load(touched=3800, promoted=1.0)], access_rate=32.0).overhead
    assert o2m < 0.05


def test_mg_d_calibration(model):
    """Table 3: mg.D ≈ 1 % at 4 KiB despite the larger working set."""
    mg = [load(touched=12000, coverage=512, pattern=Pattern.STRIDED)]
    o4k = model.epoch(mg, access_rate=1.1).overhead
    assert o4k == pytest.approx(0.0104, abs=0.006)


def test_wss_is_poor_overhead_predictor(model):
    """§2.4's headline: bigger WSS (mg.D) can mean far less overhead."""
    cg = model.epoch([load(touched=3800)], access_rate=32.0).overhead
    mg = model.epoch(
        [load(touched=12000, pattern=Pattern.STRIDED)], access_rate=1.1
    ).overhead
    assert mg < cg / 10


def test_nested_walks_amplify_overhead(model):
    loads = [load(touched=3800)]
    native = model.epoch(loads, access_rate=32.0).overhead
    nested = model.epoch(loads, access_rate=32.0, host_huge_fraction=0.0).overhead
    assert nested > native
    nested_2m_host = model.epoch(loads, access_rate=32.0, host_huge_fraction=1.0).overhead
    assert native < nested_2m_host < nested


def test_charge_feeds_pmu(model):
    epoch = model.epoch([load(touched=3800)], access_rate=32.0)
    pmu = PMUCounters()
    walk, total = epoch.charge(pmu, useful_us=1000.0)
    assert walk > 0 and total > walk
    assert pmu.read_overhead() == pytest.approx(epoch.overhead, rel=1e-6)


def test_tlb_miss_rate_reported(model):
    epoch = model.epoch([load(touched=3800)], access_rate=32.0)
    assert 0.0 < epoch.tlb_miss_rate <= 1.0


def test_weights_split_accesses(model):
    full = model.epoch([load(touched=3800, weight=1.0)], access_rate=32.0)
    halves = model.epoch(
        [load(touched=1900, weight=0.5), load(touched=1900, weight=0.5)],
        access_rate=32.0,
    )
    assert halves.overhead == pytest.approx(full.overhead, rel=0.05)
