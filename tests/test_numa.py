"""Unit tests for the NUMA subsystem: topology validation, mempolicies,
per-node placement, hint-fault balancing and replicated page tables.

The validation tests exercise one rejection each, asserting on the
actionable part of the message — a bad topology must fail at
:class:`KernelConfig` construction, not as a mid-run allocator crash.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import Scale, make_kernel
from repro.kernel import procfs
from repro.kernel.kernel import KernelConfig
from repro.numa.mempolicy import MemPolicy, MemPolicyKind
from repro.numa.topology import NumaTopology
from repro.units import GB, MB
from repro.workloads.compute import ComputeWorkload

SCALE = Scale(1 / 64)


# --------------------------------------------------------------------- #
# KernelConfig topology validation: one test per rejection               #
# --------------------------------------------------------------------- #


def config(**kwargs) -> KernelConfig:
    kwargs.setdefault("mem_bytes", 64 * MB)  # 16384 frames
    return KernelConfig(**kwargs)


def test_zero_nodes_rejected():
    with pytest.raises(ConfigError, match="at least 1 node"):
        config(topology=NumaTopology(nodes=0))


def test_more_nodes_than_frames_rejected():
    # 4 MB = 1024 frames, the smallest legal memory; 2048 nodes cannot fit
    with pytest.raises(ConfigError, match="cannot be split across"):
        config(mem_bytes=4 * MB, topology=NumaTopology(nodes=2048))


def test_wrong_range_count_rejected():
    with pytest.raises(ConfigError, match="one range per node"):
        config(topology=NumaTopology(nodes=2, ranges=((0, 16384),)))


def test_non_contiguous_ranges_rejected():
    with pytest.raises(ConfigError, match="must partition"):
        config(topology=NumaTopology(
            nodes=2, ranges=((0, 8000), (9000, 16384))))


def test_empty_range_rejected():
    with pytest.raises(ConfigError, match="at least one frame"):
        config(topology=NumaTopology(
            nodes=2, ranges=((0, 16384), (16384, 16384))))


def test_short_ranges_rejected():
    with pytest.raises(ConfigError, match="partition all of it"):
        config(topology=NumaTopology(
            nodes=2, ranges=((0, 8192), (8192, 16000))))


def test_wrong_distance_shape_rejected():
    with pytest.raises(ConfigError, match="must be 2x2"):
        config(topology=NumaTopology(nodes=2, distance=((10, 20),)))


def test_asymmetric_distance_rejected():
    with pytest.raises(ConfigError, match="asymmetric"):
        config(topology=NumaTopology(
            nodes=2, distance=((10, 20), (30, 10))))


def test_non_positive_local_distance_rejected():
    with pytest.raises(ConfigError, match="must be positive"):
        config(topology=NumaTopology(
            nodes=2, distance=((0, 20), (20, 10))))


def test_remote_below_local_distance_rejected():
    with pytest.raises(ConfigError, match="below local distance"):
        config(topology=NumaTopology(
            nodes=2, distance=((10, 5), (5, 10))))


def test_negative_knumad_rate_rejected():
    with pytest.raises(ConfigError, match="knumad_pages_per_sec"):
        config(knumad_pages_per_sec=-1.0)


def test_default_ranges_partition_and_align():
    topo = NumaTopology(nodes=4)
    ranges = topo.node_ranges(16384)
    assert ranges[0][0] == 0 and ranges[-1][1] == 16384
    for (_, end), (start, _) in zip(ranges, ranges[1:]):
        assert end == start
    for start, end in ranges:
        assert end > start
    # interior boundaries land on buddy-block multiples
    for start, _ in ranges[1:]:
        assert start % 1024 == 0


def test_remote_penalty_defaults_to_2x():
    topo = NumaTopology(nodes=2)
    assert topo.remote_penalty(0, 0) == 1.0
    assert topo.remote_penalty(0, 1) == 2.0


# --------------------------------------------------------------------- #
# placement: mempolicies drive where faults land                         #
# --------------------------------------------------------------------- #


def run_compute(nodes, mempolicy=None, balance=False, replicated=False,
                policy="hawkeye-g"):
    kernel = make_kernel(24 * GB, policy, SCALE, numa_nodes=nodes,
                         numa_balance=balance, replicated_pt=replicated)
    wl = ComputeWorkload("numa-unit", 2 * GB, work_us=30e6,
                         access_rate=20.0, scale=SCALE.factor)
    run = kernel.spawn(wl, node=0, mempolicy=mempolicy)
    kernel.run(max_epochs=600)
    assert run.finished
    return kernel, run.proc


def test_local_policy_faults_on_home_node():
    kernel, proc = run_compute(2)
    ns = procfs.numastat(kernel)
    assert ns["numa_nodes"] == 2
    # everything the process touched sits on its home node
    assert ns["node1_allocated_pages"] == 0
    assert ns["node0_numa_hit"] > 0
    assert ns["node0_numa_miss"] == 0


def test_interleave_policy_spreads_pages():
    kernel, proc = run_compute(
        2, mempolicy=MemPolicy(MemPolicyKind.INTERLEAVE))
    ns = procfs.numastat(kernel)
    assert ns["node0_allocated_pages"] > 0
    assert ns["node1_allocated_pages"] > 0
    # interleave splits huge regions about evenly across both nodes
    ratio = ns["node0_allocated_pages"] / max(1, ns["node1_allocated_pages"])
    assert 0.5 < ratio < 2.0


def test_bind_policy_is_strict():
    kernel, proc = run_compute(
        2, mempolicy=MemPolicy(MemPolicyKind.BIND, node=1))
    ns = procfs.numastat(kernel)
    # every process page landed on node 1, none spilled
    assert ns["node1_numa_hit"] > 0
    assert ns["node1_numa_foreign"] == 0


def test_numa_maps_reports_policy_and_placement():
    kernel, proc = run_compute(
        2, mempolicy=MemPolicy(MemPolicyKind.INTERLEAVE))
    rows = procfs.numa_maps(kernel, proc)
    assert rows, "process has at least one VMA"
    total = 0
    for row in rows:
        assert row["policy"] == "interleave"
        total += row["node0_pages"] + row["node1_pages"]
    assert total == proc.rss_pages()


def test_balancing_migrates_interleaved_pages_home():
    kernel, proc = run_compute(
        2, mempolicy=MemPolicy(MemPolicyKind.INTERLEAVE), balance=True)
    assert proc.stats.remote_walk_cycles >= 0
    ns = procfs.numastat(kernel)
    migrated = ns["numa_pages_migrated"]
    assert migrated > 0
    assert ns["numa_hint_faults"] > 0
    # after balancing, the home node holds more than the remote one
    assert ns["node0_allocated_pages"] > ns["node1_allocated_pages"]


def test_replicated_pt_suppresses_remote_walks_and_costs_memory():
    kernel, proc = run_compute(
        2, mempolicy=MemPolicy(MemPolicyKind.INTERLEAVE), replicated=True)
    assert kernel.numa.remote_walk_share() == 0.0
    ns = procfs.numastat(kernel)
    assert ns["numa_pt_replica_pages"] > 0


def test_single_node_numastat_shape():
    kernel = make_kernel(24 * GB, "hawkeye-g", SCALE)
    ns = procfs.numastat(kernel)
    assert ns["numa_nodes"] == 1
    assert ns["node0_total_pages"] == kernel.buddy.total_pages
    assert ns["numa_pages_migrated"] == 0
    assert ns["numa_pt_replica_pages"] == 0
