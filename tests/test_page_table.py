"""Unit tests for the two-granularity page table."""

import pytest

from repro.errors import InvalidAddressError
from repro.units import PAGES_PER_HUGE
from repro.vm.page_table import PageTable


@pytest.fixture
def pt() -> PageTable:
    return PageTable()


def test_base_map_translate_unmap(pt):
    pt.map_base(1000, 77)
    assert pt.translate(1000) == (77, False)
    assert pt.is_mapped(1000)
    pte = pt.unmap_base(1000)
    assert pte.frame == 77
    assert pt.translate(1000) is None


def test_double_map_rejected(pt):
    pt.map_base(5, 1)
    with pytest.raises(InvalidAddressError):
        pt.map_base(5, 2)


def test_huge_map_translates_interior_pages(pt):
    pt.map_huge(2, 4096)  # covers vpns 1024..1535
    assert pt.translate(1024) == (4096, True)
    assert pt.translate(1100) == (4096 + 76, True)
    assert pt.is_mapped(1535)
    assert pt.translate(1536) is None


def test_base_inside_huge_rejected(pt):
    pt.map_huge(0, 0)
    with pytest.raises(InvalidAddressError):
        pt.map_base(10, 5)


def test_huge_double_map_rejected(pt):
    pt.map_huge(3, 512)
    with pytest.raises(InvalidAddressError):
        pt.map_huge(3, 1024)


def test_unmap_missing_raises(pt):
    with pytest.raises(InvalidAddressError):
        pt.unmap_base(9)
    with pytest.raises(InvalidAddressError):
        pt.unmap_huge(9)


def test_demote_creates_512_contiguous_base_ptes(pt):
    huge = pt.map_huge(4, 8192)
    huge.accessed = True
    created = pt.demote_huge(4)
    assert len(created) == PAGES_PER_HUGE
    assert 4 not in pt.huge
    vpn0 = 4 << 9
    assert pt.translate(vpn0) == (8192, False)
    assert pt.translate(vpn0 + 511) == (8192 + 511, False)
    assert all(pte.accessed for _, pte in created), "access bit propagates"


def test_region_base_vpns(pt):
    vpn0 = 2 << 9
    for i in (0, 5, 511):
        pt.map_base(vpn0 + i, 100 + i)
    assert pt.region_base_vpns(2) == [vpn0, vpn0 + 5, vpn0 + 511]
    assert pt.region_base_vpns(3) == []


def test_resident_excludes_shared_zero(pt):
    pt.map_base(0, 1)
    pt.map_base(1, 99, shared_zero=True)
    pt.map_huge(10, 512)
    assert pt.shared_zero_count == 1
    assert pt.resident_pages() == 1 + PAGES_PER_HUGE
    assert pt.huge_mapped_pages() == PAGES_PER_HUGE


def test_unmap_shared_zero_updates_count(pt):
    pt.map_base(1, 99, shared_zero=True)
    pt.unmap_base(1)
    assert pt.shared_zero_count == 0
