"""Unit tests for the emulated performance counters (Table 4)."""

import pytest

from repro.tlb.perf import LOAD_FRACTION, PMUCounters


def test_table4_formula():
    """MMU overhead = (C1 + C2) / C3."""
    pmu = PMUCounters()
    pmu.record(walk_cycles=300.0, total_cycles=1000.0)
    assert pmu.read_overhead() == pytest.approx(0.3)
    assert pmu.dtlb_load_walk_duration == pytest.approx(300 * LOAD_FRACTION)
    assert pmu.dtlb_store_walk_duration == pytest.approx(300 * (1 - LOAD_FRACTION))


def test_zero_cycles_reads_zero():
    assert PMUCounters().read_overhead() == 0.0


def test_interval_sampling():
    pmu = PMUCounters()
    pmu.record(100.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.1)
    # quiet interval
    pmu.record(0.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.0)
    # busy interval again: sample sees only the new activity
    pmu.record(500.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.5)
    # lifetime counter still integrates everything
    assert pmu.read_overhead() == pytest.approx(600 / 3000)


def test_sample_with_no_progress_is_zero():
    pmu = PMUCounters()
    pmu.record(100.0, 1000.0)
    pmu.sample()
    assert pmu.sample() == 0.0
