"""Unit tests for the emulated performance counters (Table 4) and the
bench regression gates."""

import pytest

from repro.perf import TRACE_OVERHEAD_CEILING, check_regression
from repro.tlb.perf import LOAD_FRACTION, PMUCounters


def test_table4_formula():
    """MMU overhead = (C1 + C2) / C3."""
    pmu = PMUCounters()
    pmu.record(walk_cycles=300.0, total_cycles=1000.0)
    assert pmu.read_overhead() == pytest.approx(0.3)
    assert pmu.dtlb_load_walk_duration == pytest.approx(300 * LOAD_FRACTION)
    assert pmu.dtlb_store_walk_duration == pytest.approx(300 * (1 - LOAD_FRACTION))


def test_zero_cycles_reads_zero():
    assert PMUCounters().read_overhead() == 0.0


def test_interval_sampling():
    pmu = PMUCounters()
    pmu.record(100.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.1)
    # quiet interval
    pmu.record(0.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.0)
    # busy interval again: sample sees only the new activity
    pmu.record(500.0, 1000.0)
    assert pmu.sample() == pytest.approx(0.5)
    # lifetime counter still integrates everything
    assert pmu.read_overhead() == pytest.approx(600 / 3000)


def test_sample_with_no_progress_is_zero():
    pmu = PMUCounters()
    pmu.record(100.0, 1000.0)
    pmu.sample()
    assert pmu.sample() == 0.0


BASELINE = {"speedup": 4.0}


def test_check_regression_passes_within_tolerance():
    result = {"speedup": 3.5, "trace_overhead": 0.01}
    assert check_regression(result, BASELINE) == []


def test_check_regression_flags_speedup_collapse():
    failures = check_regression({"speedup": 1.2, "trace_overhead": 0.0}, BASELINE)
    assert len(failures) == 1 and "speedup" in failures[0]


def test_check_regression_flags_trace_overhead():
    result = {"speedup": 4.0, "trace_overhead": TRACE_OVERHEAD_CEILING}
    failures = check_regression(result, BASELINE)
    assert len(failures) == 1
    assert "disabled-tracing overhead" in failures[0]
    # just under the ceiling passes
    result["trace_overhead"] = TRACE_OVERHEAD_CEILING - 0.001
    assert check_regression(result, BASELINE) == []


def test_check_regression_tolerates_pre_trace_results():
    # results produced before the tracing gate carry no trace_overhead key
    assert check_regression({"speedup": 4.0}, BASELINE) == []
