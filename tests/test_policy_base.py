"""Tests for the policy interface's default behaviour."""

import pytest

from repro.policies.base import HugePagePolicy
from tests.test_fault import make_proc


class MinimalPolicy(HugePagePolicy):
    """Smallest possible concrete policy: base pages, no background work."""

    name = "minimal"

    def fault_size(self, proc, vma, vpn):
        """Always base."""
        return "base"


def make(kernel4k_factory=None):
    from repro.kernel.kernel import Kernel
    from tests.conftest import small_config

    return Kernel(small_config(), MinimalPolicy)


def test_abstract_policy_cannot_instantiate():
    with pytest.raises(TypeError):
        HugePagePolicy(object())


def test_default_hooks_are_noops():
    kernel = make()
    proc, vma = make_proc(kernel)
    policy = kernel.policy
    assert policy.reserved_frame(proc, vma, vma.start) is None
    assert policy.on_memory_pressure(100) == 0
    assert policy.estimated_overhead(proc) == 0.0
    policy.post_fault(proc, vma, vma.start, huge=False)
    policy.on_epoch()
    policy.on_sample(proc)
    policy.on_madvise_free(proc, vma.start, 1)
    policy.on_process_exit(proc)


def test_minimal_policy_runs_workloads():
    from tests.conftest import spawn_simple

    kernel = make()
    run = spawn_simple(kernel, heap_mb=4, work_s=2.0)
    kernel.run(max_epochs=50)
    assert run.finished
    assert run.proc.stats.huge_faults == 0


def test_baselines_do_not_trust_zero_lists():
    kernel = make()
    assert not kernel.policy.trusts_zero_lists
