"""Unit tests for the FreeBSD reservation-based policy."""

import pytest

from repro.kernel.kernel import Kernel
from repro.policies.freebsd import FreeBSDPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


@pytest.fixture
def kernel():
    return Kernel(small_config(), FreeBSDPolicy)


def test_reservation_created_on_first_fault(kernel):
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    policy = kernel.policy
    key = (proc.pid, vma.start >> 9)
    assert key in policy.reservations
    assert proc.stats.huge_faults == 0, "FreeBSD never maps huge at fault"


def test_faults_fill_reservation_contiguously(kernel):
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    block = kernel.policy.reservations[(proc.pid, vma.start >> 9)]
    kernel.fault(proc, vma.start + 77)
    assert proc.page_table.translate(vma.start + 77) == (block + 77, False)


def test_promotion_only_at_full_population(kernel):
    proc, vma = make_proc(kernel)
    for i in range(PAGES_PER_HUGE - 1):
        kernel.fault(proc, vma.start + i)
    region = proc.region(vma.start >> 9)
    assert not region.is_huge
    kernel.fault(proc, vma.start + PAGES_PER_HUGE - 1)
    assert region.is_huge, "512th fault triggers in-place promotion"
    assert kernel.stats.inplace_promotions == 1
    assert (proc.pid, vma.start >> 9) not in kernel.policy.reservations


def test_pressure_breaks_reservations(kernel):
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)  # 1 page used, 511 reserved
    free_before = kernel.buddy.free_pages
    freed = kernel.policy.on_memory_pressure(100)
    assert freed == PAGES_PER_HUGE - 1
    assert kernel.buddy.free_pages == free_before + freed
    assert kernel.policy.reservations_broken == 1
    # the mapped page survives
    assert proc.page_table.is_mapped(vma.start)


def test_reservations_count_as_allocated(kernel):
    proc, vma = make_proc(kernel)
    before = kernel.buddy.allocated_pages
    kernel.fault(proc, vma.start)
    assert kernel.buddy.allocated_pages == before + PAGES_PER_HUGE


def test_madvise_breaks_covering_reservation(kernel):
    proc, vma = make_proc(kernel)
    for i in range(10):
        kernel.fault(proc, vma.start + i)
    kernel.madvise_free(proc, vma.start, 5)
    assert (proc.pid, vma.start >> 9) not in kernel.policy.reservations
    # unreserved frames were freed, mapped ones kept
    assert proc.page_table.is_mapped(vma.start + 7)
    assert not proc.page_table.is_mapped(vma.start + 2)


def test_no_reservation_when_fragmented(kernel):
    kernel.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    assert not kernel.policy.reservations
    assert proc.page_table.is_mapped(vma.start)


def test_small_vma_gets_no_reservation(kernel):
    proc, vma = make_proc(kernel, nbytes=1 * MB)
    kernel.fault(proc, vma.start)
    assert not kernel.policy.reservations
