"""Unit tests for the Ingens policy."""

import pytest

from repro.kernel.kernel import Kernel
from repro.policies.ingens import IngensPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


def make(util=0.9, adaptive=True, rate=100.0):
    return Kernel(
        small_config(128),
        lambda k: IngensPolicy(k, util_threshold=util, adaptive=adaptive,
                               promote_per_sec=rate),
    )


def fill_region(kernel, proc, vma, hvpn_offset=0, pages=PAGES_PER_HUGE):
    base = vma.start + hvpn_offset * PAGES_PER_HUGE
    for i in range(pages):
        kernel.fault(proc, base + i)


def test_faults_always_base():
    kernel = make()
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    assert proc.stats.huge_faults == 0


def test_aggressive_phase_promotes_sparse_regions():
    """FMFI < 0.5: behave like Linux, promote at first opportunity."""
    kernel = make(util=0.9)
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)  # 1/512 resident
    assert kernel.policy.current_threshold() < 0.01
    kernel.run_epochs(1)
    assert proc.region(vma.start >> 9).is_huge


def test_conservative_phase_requires_utilization():
    kernel = make(util=0.9)
    kernel.fragmenter.fragment(keep_fraction=0.3)  # FMFI stays high
    assert kernel.fmfi() > 0.5
    proc, vma = make_proc(kernel)
    fill_region(kernel, proc, vma, pages=256)  # 50% utilised
    assert kernel.policy.current_threshold() == 0.9
    kernel.run_epochs(2)
    assert not proc.region(vma.start >> 9).is_huge


def test_non_adaptive_always_conservative():
    kernel = make(util=0.9, adaptive=False)
    assert kernel.fmfi() < 0.5
    assert kernel.policy.current_threshold() == 0.9


def test_utilization_threshold_variants():
    """Ingens-50 promotes half-full regions that Ingens-90 refuses."""
    for util, expect_promoted in ((0.5, True), (0.9, False)):
        kernel = make(util=util, adaptive=False)
        proc, vma = make_proc(kernel)
        fill_region(kernel, proc, vma, pages=300)  # ~59% utilised
        kernel.run_epochs(2)
        assert proc.region(vma.start >> 9).is_huge is expect_promoted


def test_proportional_fairness_prefers_less_served_process():
    kernel = make(util=0.5, adaptive=False, rate=1.0)
    rich, vma_r = make_proc(kernel, nbytes=8 * MB)
    poor, vma_p = make_proc(kernel, nbytes=8 * MB)
    for i in range(4):
        fill_region(kernel, rich, vma_r, hvpn_offset=i)
        fill_region(kernel, poor, vma_p, hvpn_offset=i)
    # give `rich` two huge pages up front
    kernel.promote_region(rich, vma_r.start >> 9)
    kernel.promote_region(rich, (vma_r.start >> 9) + 1)
    assert kernel.policy.promotion_metric(rich) > kernel.policy.promotion_metric(poor)
    kernel.run_epochs(1)  # budget ~2: both should go to `poor`
    assert poor.stats.promotions >= 1
    assert rich.stats.promotions == 2  # unchanged this epoch


def test_idle_penalty_lowers_priority():
    kernel = make()
    busy, vma_b = make_proc(kernel, nbytes=8 * MB)
    idle, vma_i = make_proc(kernel, nbytes=8 * MB)
    for proc, vma in ((busy, vma_b), (idle, vma_i)):
        fill_region(kernel, proc, vma)
        kernel.promote_region(proc, vma.start >> 9)
    busy.region(vma_b.start >> 9).idle = False
    idle.region(vma_i.start >> 9).idle = True
    policy = kernel.policy
    assert policy.promotion_metric(idle) > policy.promotion_metric(busy)


def test_promotion_low_va_first():
    kernel = make(util=0.5, adaptive=False, rate=1.0)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    for i in (3, 1, 0, 2):
        fill_region(kernel, proc, vma, hvpn_offset=i)
    promoted = []
    original = kernel.promote_region

    def spy(p, hvpn):
        r = original(p, hvpn)
        if r is not None:
            promoted.append(hvpn)
        return r

    kernel.promote_region = spy
    kernel.run_epochs(4)
    assert promoted == sorted(promoted)


def test_name_reflects_threshold():
    kernel = make(util=0.9)
    assert kernel.policy.name == "ingens-90"


class TestKsmCoordination:
    """§3.2: Ingens demotes only *idle* huge pages for merging."""

    def test_idle_huge_pages_demoted_under_pressure(self):
        kernel = make()
        proc, vma = make_proc(kernel, nbytes=8 * MB)
        for offset in range(2):
            fill_region(kernel, proc, vma, hvpn_offset=offset, pages=1)
            kernel.run_epochs(1)  # aggressive promote (FMFI low)
        hot, cold = (vma.start >> 9), (vma.start >> 9) + 1
        assert proc.regions[hot].is_huge and proc.regions[cold].is_huge
        proc.regions[hot].idle = False
        proc.regions[cold].idle = True
        freed = kernel.policy.on_memory_pressure(100)
        # only the idle region was demoted; demotion itself frees nothing
        # (reclaim happens at the background merger's pace), so Ingens
        # still OOMs in Figure 1
        assert freed == 0
        assert not proc.regions[cold].is_huge
        assert proc.regions[hot].is_huge
        assert kernel.policy.demotions_for_ksm == 1

    def test_background_merger_reclaims_exposed_bloat(self):
        kernel = make()
        kernel.policy.enable_ksm(pages_per_sec=1e9)
        proc, vma = make_proc(kernel, nbytes=8 * MB)
        fill_region(kernel, proc, vma, pages=1)
        kernel.run_epochs(1)  # aggressive promotion of the sparse region
        assert proc.regions[vma.start >> 9].is_huge
        proc.regions[vma.start >> 9].idle = True
        kernel.policy.on_memory_pressure(100)  # demote for ksm
        free_before = kernel.buddy.free_pages
        kernel.run_epochs(2)  # merger passes reclaim the zero pages
        assert kernel.buddy.free_pages > free_before + 400

    def test_pressure_with_no_idle_pages_demotes_nothing(self):
        kernel = make()
        proc, vma = make_proc(kernel)
        fill_region(kernel, proc, vma)
        kernel.run_epochs(1)
        for region in proc.regions.values():
            region.idle = False
        assert kernel.policy.on_memory_pressure(100) == 0
        assert kernel.policy.demotions_for_ksm == 0
