"""Unit tests for the Linux policies (4KB baseline and THP)."""

import pytest

from repro.kernel.kernel import Kernel
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


def touch(kernel, proc, vma, n):
    for vpn in range(vma.start, vma.start + n):
        kernel.fault(proc, vpn)


def test_linux4k_never_maps_huge(kernel4k):
    proc, vma = make_proc(kernel4k)
    touch(kernel4k, proc, vma, 2 * PAGES_PER_HUGE)
    assert len(proc.page_table.huge) == 0
    kernel4k.run_epochs(5)
    assert kernel4k.stats.promotions == 0


def test_khugepaged_promotes_sparse_regions(kernel_thp):
    """Linux collapses around holes (max_ptes_none): 1 resident page
    is enough — the paper's bloat-by-promotion mechanism."""
    kernel_thp.fragmenter.fragment(keep_fraction=0.02)  # force base faults
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)  # a single base page
    assert proc.stats.huge_faults == 0
    kernel_thp.fragmenter.release_all()  # contiguity returns
    kernel_thp.run_epochs(3)
    assert proc.region(vma.start >> 9).is_huge
    assert kernel_thp.stats.promotions == 1


def test_khugepaged_scans_low_to_high_va(kernel_thp):
    kernel_thp.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    # fault one page in every region, high region first
    regions = list(range(vma.start >> 9, vma.end >> 9))
    for hvpn in reversed(regions):
        kernel_thp.fault(proc, hvpn << 9)
    kernel_thp.fragmenter.release_all()
    promoted_order = []
    original = kernel_thp.promote_region

    def spy(p, hvpn):
        result = original(p, hvpn)
        if result is not None:
            promoted_order.append(hvpn)
        return result

    kernel_thp.promote_region = spy
    kernel_thp.run_epochs(2)
    assert promoted_order == sorted(promoted_order)
    assert promoted_order[0] == regions[0]


def test_khugepaged_fcfs_across_processes():
    kernel = Kernel(small_config(128), lambda k: LinuxTHPPolicy(k, promote_per_sec=4.0))
    kernel.fragmenter.fragment(keep_fraction=0.02)
    first, vma1 = make_proc(kernel, nbytes=8 * MB)
    second, vma2 = make_proc(kernel, nbytes=8 * MB)
    for vma, proc in ((vma1, first), (vma2, second)):
        for hvpn in range(vma.start >> 9, vma.end >> 9):
            kernel.fault(proc, hvpn << 9)
    kernel.fragmenter.release_all()
    kernel.run_epochs(1)  # budget 4: all go to the first process
    assert first.stats.promotions == 4
    assert second.stats.promotions == 0
    kernel.run_epochs(1)  # first exhausted (4 regions), second starts
    assert second.stats.promotions == 4


def test_khugepaged_rate_limited(kernel_thp):
    kernel_thp.policy._limiter.per_second = 2.0
    kernel_thp.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel_thp, nbytes=16 * MB)
    for hvpn in range(vma.start >> 9, vma.end >> 9):
        kernel_thp.fault(proc, hvpn << 9)
    kernel_thp.fragmenter.release_all()
    kernel_thp.run_epochs(1)
    assert proc.stats.promotions <= 4  # 2/s with ≤2 epochs of carryover


def test_khugepaged_disabled():
    kernel = Kernel(small_config(), lambda k: LinuxTHPPolicy(k, khugepaged=False))
    kernel.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)
    kernel.fragmenter.release_all()
    kernel.run_epochs(5)
    assert kernel.stats.promotions == 0
