"""Unit tests for the async pre-zeroing thread (§3.1)."""

import pytest

from repro.core.prezero import (
    INTERFERENCE_PER_GBPS_CACHED,
    INTERFERENCE_PER_GBPS_NT,
    PreZeroThread,
)
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy
from repro.units import GB, MB


def make_kernel(mem_mb=64, boot_zeroed=False):
    return Kernel(
        KernelConfig(mem_bytes=mem_mb * MB, boot_zeroed=boot_zeroed), Linux4KPolicy
    )


def test_prezero_converts_dirty_to_zero_lists():
    kernel = make_kernel()
    thread = PreZeroThread(kernel, pages_per_sec=1e9)
    assert kernel.buddy.free_zeroed_pages() == 0
    zeroed = thread.run_epoch()
    assert zeroed == kernel.buddy.free_pages
    assert kernel.buddy.free_zeroed_pages() == kernel.buddy.free_pages
    assert kernel.stats.pages_prezeroed == zeroed
    assert kernel.stats.prezero_cpu_us > 0


def test_prezero_rate_limited():
    kernel = make_kernel()
    thread = PreZeroThread(kernel, pages_per_sec=1024.0)
    zeroed = thread.run_epoch()
    assert zeroed <= 2048  # one epoch + carryover cap
    assert zeroed >= 512


def test_prezero_idempotent_when_all_zero():
    kernel = make_kernel(boot_zeroed=True)
    thread = PreZeroThread(kernel, pages_per_sec=1e9)
    assert thread.run_epoch() == 0


def test_prezero_splits_unaffordable_blocks():
    """Tiny budgets must still make progress on huge free blocks."""
    kernel = make_kernel()
    thread = PreZeroThread(kernel, pages_per_sec=64.0)
    total = 0
    for _ in range(20):
        total += thread.run_epoch()
    assert total == pytest.approx(20 * 64, rel=0.3)


def test_interference_published_nt_vs_cached():
    """Figure 10 calibration: at 1 GB/s of zeroing, a sensitivity-1.0
    workload slows 27% with caching stores and 6% with non-temporal."""
    kernel = make_kernel()
    gb_per_sec_pages = int(GB / 4096)
    nt = PreZeroThread(kernel, non_temporal=True)
    nt._publish_interference(gb_per_sec_pages)
    nt_slowdown = kernel.prezero_interference
    assert nt_slowdown == pytest.approx(INTERFERENCE_PER_GBPS_NT, rel=0.01)

    cached = PreZeroThread(kernel, non_temporal=False)
    cached._publish_interference(gb_per_sec_pages)
    assert kernel.prezero_interference == pytest.approx(
        INTERFERENCE_PER_GBPS_CACHED, rel=0.01
    )
    # Figure 10: non-temporal stores cut interference ~4.5x
    assert kernel.prezero_interference / nt_slowdown == pytest.approx(4.5, rel=0.1)


def test_interference_zero_when_idle():
    kernel = make_kernel(boot_zeroed=True)
    thread = PreZeroThread(kernel, pages_per_sec=1e9)
    thread.run_epoch()
    assert kernel.prezero_interference == 0.0
