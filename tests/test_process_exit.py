"""Tests for process teardown (exit_process)."""

import pytest

from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.freebsd import FreeBSDPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


def test_exit_releases_all_memory(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    for hvpn in range(vma.start >> 9, vma.end >> 9):
        kernel_thp.fault(proc, hvpn << 9)
    free_before_exit = kernel_thp.buddy.free_pages
    freed = kernel_thp.exit_process(proc)
    assert freed == 4 * PAGES_PER_HUGE
    assert kernel_thp.buddy.free_pages == free_before_exit + freed
    assert proc not in kernel_thp.processes
    assert len(proc.page_table.base) == 0
    assert len(proc.page_table.huge) == 0


def test_exit_with_mixed_mappings(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    kernel_thp.fault(proc, vma.start)                      # huge
    kernel_thp.demote_region(proc, vma.start >> 9)
    kernel_thp.madvise_free(proc, vma.start, 10)           # holes
    kernel_thp.dedup_zero_pages(proc, vma.start >> 9)      # shared-zero rest
    shared = proc.page_table.shared_zero_count
    assert shared > 0
    mappings_before = kernel_thp.zero_registry.mappings
    kernel_thp.exit_process(proc)
    assert kernel_thp.zero_registry.mappings == mappings_before - shared
    # every frame is back: only the canonical zero frame stays allocated
    assert kernel_thp.frames.allocated_count() == 1


def test_exit_clears_policy_state():
    kernel = Kernel(small_config(), FreeBSDPolicy)
    proc, vma = make_proc(kernel)
    kernel.fault(proc, vma.start)  # creates a reservation
    assert kernel.policy.reservations
    kernel.exit_process(proc)
    assert not kernel.policy.reservations
    assert kernel.frames.allocated_count() == 1


def test_exit_drops_swap_entries():
    kernel = Kernel(
        KernelConfig(mem_bytes=8 * MB, swap_bytes=32 * MB),
        lambda k: __import__("repro.policies.linux", fromlist=["Linux4KPolicy"]).Linux4KPolicy(k),
    )
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    for vpn in range(vma.start, vma.start + 3000):
        kernel.fault(proc, vpn)
    assert kernel.swap.swapped
    kernel.exit_process(proc)
    assert not kernel.swap.swapped


def test_exit_finishes_workload_run(kernel4k):
    from tests.conftest import spawn_simple

    run = spawn_simple(kernel4k, heap_mb=4, work_s=1000.0)
    kernel4k.run_epochs(2)
    assert not run.finished
    kernel4k.exit_process(run.proc)
    assert run.finished
    kernel4k.run_epochs(2)  # the dead run must not be stepped again


def test_exit_twice_is_safe(kernel4k):
    proc, vma = make_proc(kernel4k)
    kernel4k.fault(proc, vma.start)
    kernel4k.exit_process(proc)
    assert kernel4k.exit_process(proc) == 0
