"""Unit tests for /proc-style snapshots."""

import pytest

from repro.kernel import procfs
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.vma import HugePageHint
from tests.test_fault import make_proc


def test_meminfo_accounts_consistently(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    info = procfs.meminfo(kernel_thp)
    assert info["MemTotal"] == info["MemFree"] + info["MemAllocated"]
    assert info["AnonHugePages"] == 2048  # one 2 MiB mapping in KiB
    assert info["SwapUsed"] == 0


def test_meminfo_tracks_zero_lists(kernel_hawkeye):
    kernel_hawkeye.run_epochs(1)
    info = procfs.meminfo(kernel_hawkeye)
    assert info["ZeroedFree"] == info["MemFree"]  # boot memory pre-zeroed


def test_vmstat_counters(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    kernel_thp.demote_region(proc, vma.start >> 9)
    stats = procfs.vmstat(kernel_thp)
    assert stats["pgfault"] == 1
    assert stats["pgfault_huge"] == 1
    assert stats["thp_split"] == 1
    assert stats["oom_kill"] == 0


def test_smaps_rows(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    kernel_thp.madvise_hugepage(proc, "heap", HugePageHint.ALWAYS)
    kernel_thp.fault(proc, vma.start)
    rows = procfs.smaps(kernel_thp, proc)
    assert len(rows) == 1
    row = rows[0]
    assert row["name"] == "heap"
    assert row["size_kb"] == 8 * 1024
    assert row["rss_kb"] == 2 * 1024
    assert row["anon_huge_kb"] == 2 * 1024
    assert row["hint"] == "always"


def test_format_meminfo_layout(kernel4k):
    text = procfs.format_meminfo(kernel4k)
    assert "MemTotal:" in text
    assert text.strip().endswith("kB")


MEMINFO_KEYS = {
    "MemTotal", "MemFree", "MemAllocated", "FileCache", "AnonHugePages",
    "ZeroedFree", "ZeroPageShared", "SwapUsed",
}

VMSTAT_KEYS = {
    "pgfault", "pgfault_huge", "pgfault_cow", "thp_collapse_alloc",
    "thp_promote_inplace", "thp_split", "pages_prezeroed",
    "bloat_pages_recovered", "compact_pages_moved", "ksm_pages_merged",
    "pgreclaim_file", "oom_kill", "pswpout", "pswpin",
    "trace_attached", "trace_events", "trace_dropped",
    "audit_attached", "audit_decisions", "audit_dropped",
}

SMAPS_KEYS = {
    "name", "start_page", "size_kb", "rss_kb", "anon_huge_kb", "kind", "hint",
}


def test_meminfo_key_set_is_stable(kernel4k):
    assert set(procfs.meminfo(kernel4k)) == MEMINFO_KEYS


def test_vmstat_key_set_is_stable(kernel4k):
    assert set(procfs.vmstat(kernel4k)) == VMSTAT_KEYS


def test_smaps_key_set_is_stable(kernel4k):
    proc, _vma = make_proc(kernel4k)
    rows = procfs.smaps(kernel4k, proc)
    assert rows and all(set(row) == SMAPS_KEYS for row in rows)


def test_meminfo_invariants_hold_under_churn(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    for offset in range(0, 3 * PAGES_PER_HUGE, 7):
        kernel_thp.fault(proc, vma.start + offset)
    kernel_thp.madvise_free(proc, vma.start, PAGES_PER_HUGE + 5)
    info = procfs.meminfo(kernel_thp)
    assert info["MemTotal"] == info["MemFree"] + info["MemAllocated"]
    assert 0 <= info["ZeroedFree"] <= info["MemFree"]
    assert info["AnonHugePages"] <= info["MemAllocated"]
    assert all(v >= 0 for v in info.values())


def test_vmstat_counters_never_negative(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    kernel_thp.demote_region(proc, vma.start >> 9)
    kernel_thp.run_epochs(3)
    assert all(v >= 0 for v in procfs.vmstat(kernel_thp).values())


def test_smaps_rss_bounded_by_size(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    for offset in range(0, vma.npages, 11):
        kernel_thp.fault(proc, vma.start + offset)
    for row in procfs.smaps(kernel_thp, proc):
        assert 0 <= row["rss_kb"] <= row["size_kb"]
        assert row["anon_huge_kb"] <= row["size_kb"]


def test_swap_accounting_in_meminfo_and_vmstat():
    from repro.kernel.kernel import Kernel, KernelConfig
    from repro.policies.linux import Linux4KPolicy

    kernel = Kernel(
        KernelConfig(mem_bytes=4 * MB, swap_bytes=4 * MB), Linux4KPolicy)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    for offset in range(1200):
        kernel.fault(proc, vma.start + offset)
    info = procfs.meminfo(kernel)
    stats = procfs.vmstat(kernel)
    assert info["SwapUsed"] > 0
    assert stats["pswpout"] > 0
    assert info["SwapUsed"] == (stats["pswpout"] - stats["pswpin"]) * 4
