"""Unit tests for /proc-style snapshots."""

import pytest

from repro.kernel import procfs
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.vma import HugePageHint
from tests.test_fault import make_proc


def test_meminfo_accounts_consistently(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    info = procfs.meminfo(kernel_thp)
    assert info["MemTotal"] == info["MemFree"] + info["MemAllocated"]
    assert info["AnonHugePages"] == 2048  # one 2 MiB mapping in KiB
    assert info["SwapUsed"] == 0


def test_meminfo_tracks_zero_lists(kernel_hawkeye):
    kernel_hawkeye.run_epochs(1)
    info = procfs.meminfo(kernel_hawkeye)
    assert info["ZeroedFree"] == info["MemFree"]  # boot memory pre-zeroed


def test_vmstat_counters(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    kernel_thp.demote_region(proc, vma.start >> 9)
    stats = procfs.vmstat(kernel_thp)
    assert stats["pgfault"] == 1
    assert stats["pgfault_huge"] == 1
    assert stats["thp_split"] == 1
    assert stats["oom_kill"] == 0


def test_smaps_rows(kernel_thp):
    proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
    kernel_thp.madvise_hugepage(proc, "heap", HugePageHint.ALWAYS)
    kernel_thp.fault(proc, vma.start)
    rows = procfs.smaps(kernel_thp, proc)
    assert len(rows) == 1
    row = rows[0]
    assert row["name"] == "heap"
    assert row["size_kb"] == 8 * 1024
    assert row["rss_kb"] == 2 * 1024
    assert row["anon_huge_kb"] == 2 * 1024
    assert row["hint"] == "always"


def test_format_meminfo_layout(kernel4k):
    text = procfs.format_meminfo(kernel4k)
    assert "MemTotal:" in text
    assert text.strip().endswith("kB")
