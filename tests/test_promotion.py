"""Unit tests for the cross-process promotion engine (§3.4)."""

import pytest

from repro.core.access_map import AccessMap
from repro.core.promotion import PromotionEngine
from repro.kernel.kernel import Kernel
from repro.policies.linux import LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


def make_kernel():
    # khugepaged off: only the engine under test promotes
    return Kernel(small_config(128), lambda k: LinuxTHPPolicy(k, khugepaged=False))


def resident_proc(kernel, nregions=4, nbytes=16 * MB, name="p"):
    """Process with base-mapped regions (fragmented-at-alloc shape)."""
    kernel.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel, nbytes=nbytes)
    proc.name = name
    for r in range(nregions):
        base = vma.start + r * PAGES_PER_HUGE
        for i in range(PAGES_PER_HUGE):
            kernel.fault(proc, base + i)
    kernel.fragmenter.release_all()
    return proc, vma


def engine_for(kernel, maps, variant="g", measured=None, rate=100.0):
    measured = measured or {}
    return PromotionEngine(
        kernel,
        maps,
        promote_per_sec=rate,
        variant=variant,
        measured_overhead=lambda proc: measured.get(proc.name, 0.0),
    )


def test_invalid_variant_rejected():
    kernel = make_kernel()
    with pytest.raises(ValueError):
        PromotionEngine(kernel, {}, variant="bogus")


def test_g_promotes_hottest_bucket_first():
    kernel = make_kernel()
    proc, vma = resident_proc(kernel)
    amap = AccessMap()
    hvpn0 = vma.start >> 9
    amap.update(hvpn0 + 0, 30)    # cold
    amap.update(hvpn0 + 1, 480)   # hot
    amap.update(hvpn0 + 2, 250)   # warm
    engine = engine_for(kernel, {proc.pid: amap}, rate=1.0)
    engine.run_epoch()
    assert proc.regions[hvpn0 + 1].is_huge
    assert not proc.regions[hvpn0 + 0].is_huge


def test_g_round_robin_at_same_level():
    kernel = make_kernel()
    a, vma_a = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="a")
    b, vma_b = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="b")
    maps = {}
    for proc, vma in ((a, vma_a), (b, vma_b)):
        amap = AccessMap()
        for r in range(2):
            amap.update((vma.start >> 9) + r, 480)
        maps[proc.pid] = amap
    engine = engine_for(kernel, maps, rate=2.0)
    engine.run_epoch()  # budget 2 at the same bucket: one promotion each
    assert a.stats.promotions == 1
    assert b.stats.promotions == 1


def test_pmu_prefers_highest_measured_overhead():
    kernel = make_kernel()
    light, vma_l = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="light")
    heavy, vma_h = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="heavy")
    maps = {}
    for proc, vma in ((light, vma_l), (heavy, vma_h)):
        amap = AccessMap()
        for r in range(2):
            amap.update((vma.start >> 9) + r, 480)
        maps[proc.pid] = amap
    engine = engine_for(kernel, maps, variant="pmu",
                        measured={"light": 0.05, "heavy": 0.40}, rate=2.0)
    engine.run_epoch()
    assert heavy.stats.promotions == 2
    assert light.stats.promotions == 0


def test_pmu_stops_below_threshold():
    """Figure 5 (right): PMU stops promoting under 2% measured overhead."""
    kernel = make_kernel()
    proc, vma = resident_proc(kernel, nregions=2, nbytes=8 * MB)
    amap = AccessMap()
    amap.update(vma.start >> 9, 480)
    engine = engine_for(kernel, {proc.pid: amap}, variant="pmu",
                        measured={"p": 0.01}, rate=100.0)
    assert engine.run_epoch() == 0
    assert proc.stats.promotions == 0


def test_stale_entries_cleaned_up():
    kernel = make_kernel()
    proc, vma = resident_proc(kernel, nregions=1, nbytes=8 * MB)
    amap = AccessMap()
    hvpn = vma.start >> 9
    amap.update(hvpn, 480)
    kernel.promote_region(proc, hvpn)  # promoted behind the engine's back
    amap.update(hvpn + 100, 300)       # nonexistent region
    engine = engine_for(kernel, {proc.pid: amap}, rate=10.0)
    engine.run_epoch()
    assert hvpn not in amap
    assert hvpn + 100 not in amap


def test_rate_limit_respected():
    kernel = make_kernel()
    proc, vma = resident_proc(kernel, nregions=8, nbytes=32 * MB)
    amap = AccessMap()
    for r in range(8):
        amap.update((vma.start >> 9) + r, 480)
    engine = engine_for(kernel, {proc.pid: amap}, rate=3.0)
    done = engine.run_epoch()
    assert done <= 6  # 3/s with up to 2 epochs of carryover


def test_failed_promotion_does_not_burn_budget(monkeypatch):
    """A candidate that fails promote_region must not charge the limiter.

    Regression: the limiter used to be charged before promote_region, so
    a failing pick burned the epoch's budget and starved real candidates.
    """
    kernel = make_kernel()
    proc, vma = resident_proc(kernel, nregions=2, nbytes=8 * MB)
    hvpn = vma.start >> 9
    amap = AccessMap()
    amap.update(hvpn, 480)      # hottest: picked first, made to fail
    amap.update(hvpn + 1, 250)  # the real candidate
    engine = engine_for(kernel, {proc.pid: amap}, rate=1.0)
    real_promote = kernel.promote_region

    def flaky(p, h):
        return None if h == hvpn else real_promote(p, h)

    monkeypatch.setattr(kernel, "promote_region", flaky)
    assert engine.run_epoch() == 1, "budget of 1 must survive the failed pick"
    assert proc.regions[hvpn + 1].is_huge
    assert hvpn not in amap, "failed candidate dropped from the map"


def test_cleanup_pick_preserves_round_robin():
    """A stale-bucket cleanup pick must count as serving that process.

    Regression: the fallback path in _pick_g bypassed _rr_last_pid, so a
    cleanup pick reset round-robin fairness to the head of the process
    list and the same process was served twice in a row.
    """
    kernel = make_kernel()
    a, vma_a = resident_proc(kernel, nregions=3, nbytes=8 * MB, name="a")
    b, vma_b = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="b")
    a_h, b_h = vma_a.start >> 9, vma_b.start >> 9
    kernel.promote_region(a, a_h)  # promoted behind the engine's back
    amap_a, amap_b = AccessMap(), AccessMap()
    amap_a.update(a_h, 480)        # top bucket: stale entry only
    amap_a.update(a_h + 1, 250)
    amap_a.update(a_h + 2, 250)
    amap_b.update(b_h, 250)
    amap_b.update(b_h + 1, 250)
    engine = engine_for(kernel, {a.pid: amap_a, b.pid: amap_b}, rate=2.0)
    engine.run_epoch()
    # pick 1 is a cleanup pick serving A; pick 2 must round-robin to B.
    assert b.stats.promotions == 1
    assert a.stats.promotions == 2  # the behind-the-back one + pick 1


def test_pmu_fallback_pick_records_round_robin():
    """_pick_pmu's below-tie fallback must record the served pid too."""
    kernel = make_kernel()
    heavy, _ = resident_proc(kernel, nregions=1, nbytes=8 * MB, name="heavy")
    l1, vma1 = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="l1")
    l2, vma2 = resident_proc(kernel, nregions=2, nbytes=8 * MB, name="l2")
    maps = {heavy.pid: AccessMap()}  # nothing promotable for heavy
    for proc, vma in ((l1, vma1), (l2, vma2)):
        amap = AccessMap()
        for r in range(2):
            amap.update((vma.start >> 9) + r, 480)
        maps[proc.pid] = amap
    measured = {"heavy": 0.40, "l1": 0.10, "l2": 0.10}
    engine = engine_for(kernel, maps, variant="pmu", measured=measured, rate=1.0)
    engine.run_epoch()  # heavy tied alone, empty -> fallback serves l1
    assert l1.stats.promotions == 1
    measured["heavy"] = 0.0  # drops below the stop threshold
    engine.run_epoch()  # tie {l1, l2}: round-robin must resume after l1
    assert l2.stats.promotions == 1, "fallback pick reset round-robin"
    assert l1.stats.promotions == 1


def test_skip_bloat_demoted_during_pressure():
    kernel = make_kernel()
    proc, vma = resident_proc(kernel, nregions=2, nbytes=8 * MB)
    hvpn = vma.start >> 9
    amap = AccessMap()
    amap.update(hvpn, 480)
    amap.update(hvpn + 1, 480)
    proc.regions[hvpn].bloat_demoted = True
    engine = PromotionEngine(
        kernel, {proc.pid: amap}, promote_per_sec=10.0, variant="g",
        skip_bloat_demoted=lambda: True,
    )
    engine.run_epoch()
    assert not proc.regions[hvpn].is_huge, "bloat-demoted region spared"
    assert proc.regions[hvpn + 1].is_huge
