"""Property-based tests for the access_map and VMA list."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.access_map import NUM_BUCKETS, AccessMap, bucket_of
from repro.errors import InvalidAddressError
from repro.vm.vma import VMA, VMAList


@given(st.floats(0, 512))
def test_bucket_of_total_and_monotonic(coverage):
    b = bucket_of(coverage)
    assert 0 <= b < NUM_BUCKETS
    assert bucket_of(min(coverage + 50, 512)) >= b


class AccessMapMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.amap = AccessMap()
        self.model: dict[int, float] = {}

    @rule(hvpn=st.integers(0, 30), coverage=st.floats(0, 600))
    def update(self, hvpn, coverage):
        self.amap.update(hvpn, coverage)
        self.model[hvpn] = coverage

    @rule(hvpn=st.integers(0, 30))
    def remove(self, hvpn):
        self.amap.remove(hvpn)
        self.model.pop(hvpn, None)

    @rule()
    def pop(self):
        top = self.amap.highest_nonempty()
        popped = self.amap.pop_next()
        if popped is None:
            assert top is None
        else:
            assert bucket_of(min(self.model[popped], 512)) == top
            del self.model[popped]

    @invariant()
    def membership_matches_model(self):
        assert len(self.amap) == len(self.model)
        for hvpn, coverage in self.model.items():
            assert hvpn in self.amap
            expected = bucket_of(min(coverage, 512))
            assert self.amap._bucket_of[hvpn] == expected
            assert hvpn in self.amap.buckets[expected]

    @invariant()
    def promotion_order_is_bucket_descending(self):
        order = list(self.amap.iter_promotion_order())
        buckets = [self.amap._bucket_of[h] for h in order]
        assert buckets == sorted(buckets, reverse=True)


AccessMapMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
TestAccessMapProperties = AccessMapMachine.TestCase


@given(
    st.lists(
        st.tuples(st.integers(0, 2000), st.integers(1, 64)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_vma_list_never_overlaps(requests):
    vmas = VMAList()
    accepted: list[VMA] = []
    for start, npages in requests:
        try:
            accepted.append(vmas.add(VMA(start, npages, f"v{start}")))
        except InvalidAddressError:
            pass
    # no two accepted VMAs overlap
    spans = sorted((v.start, v.end) for v in accepted)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    # every accepted page resolves back to its VMA
    for vma in accepted:
        assert vmas.find(vma.start) is vma
        assert vmas.find(vma.end - 1) is vma
