"""Provenance-ledger invariants under arbitrary kernel step sequences.

A twin-kernel state machine (same shape as ``test_prop_vectorized``)
drives a vectorized and a scalar kernel — each with an audit log
attached — through randomized faults, frees, promotions, demotions and
access-bit samples, asserting after every step that

* the ledger's ``live`` column is exactly the frame table's
  ``allocated`` bitmap, and live records carry the frame's owner pid —
  i.e. every mapped frame has exactly one live provenance record and no
  freed frame keeps one;
* every frame reachable through the page table (base PTEs, and all 512
  frames of each huge block) is live in the ledger, consistent with the
  page-table mirrors;
* every freed frame that ever recorded a lifecycle event has ``freed``
  as its most recent ring entry (pre-zeroing is off, so nothing touches
  a frame after its free); and
* the two ledgers are bit-identical — provenance is part of the
  vectorized-equals-scalar contract, not an observer that perturbs it.
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import audit
from repro.core.hawkeye import HawkEyePolicy
from repro.experiments import reset_sim_state
from repro.kernel.kernel import Kernel, KernelConfig
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process
from repro.workloads.base import AccessProfile, RegionAccessSpec

#: ledger columns that must be identical across the vectorized twins.
_LEDGER_COLUMNS = (
    "live", "alloc_pid", "alloc_order", "alloc_epoch", "alloc_site",
    "ev_code", "ev_epoch", "ev_arg", "ev_len",
)


def _build(vectorized: bool):
    """One audited kernel + process + 16 MiB base-mapped heap."""
    # same pid on both twins, so pid-carrying ledger columns compare
    reset_sim_state()
    kernel = Kernel(
        KernelConfig(mem_bytes=32 * MB),
        lambda k: HawkEyePolicy(k, huge_faults=False, prezero_enabled=False),
    )
    kernel.vectorized = vectorized
    audit.attach(kernel)
    proc = Process("prop-audit")
    kernel.processes.append(proc)
    kernel.pmu[proc.pid] = PMUCounters()
    vma = kernel.mmap(proc, 16 * MB, "heap")
    return kernel, proc, vma


class AuditTwinMachine(RuleBasedStateMachine):
    """Randomized fault/free/promote/demote steps on audited twins."""

    def __init__(self):
        super().__init__()
        self.twins = [_build(True), _build(False)]

    def teardown(self):
        for kernel, _proc, _vma in self.twins:
            audit.detach(kernel)

    @rule(offset=st.integers(0, 4095))
    def fault(self, offset):
        for kernel, proc, vma in self.twins:
            kernel.fault(proc, vma.start + offset)

    @rule(offset=st.integers(0, 4000), npages=st.integers(1, 300))
    def madvise(self, offset, npages):
        for kernel, proc, vma in self.twins:
            n = min(npages, vma.npages - offset)
            kernel.madvise_free(proc, vma.start + offset, n)

    @rule(region=st.integers(0, 7))
    def promote(self, region):
        for kernel, proc, vma in self.twins:
            kernel.promote_region(proc, (vma.start >> 9) + region)

    @rule(region=st.integers(0, 7))
    def demote(self, region):
        for kernel, proc, vma in self.twins:
            hvpn = (vma.start >> 9) + region
            if hvpn in proc.page_table.huge:
                kernel.demote_region(proc, hvpn)

    @rule(coverage=st.integers(0, 600))
    def sample(self, coverage):
        profile = AccessProfile(specs=[
            RegionAccessSpec("heap", coverage=coverage),
        ])
        for kernel, proc, _vma in self.twins:
            proc.access_profile = profile
            kernel._sample_access_bits()

    # -- provenance invariants ------------------------------------------ #

    @invariant()
    def ledger_mirrors_frame_table(self):
        """live ≡ allocated; live records carry the owner pid."""
        for kernel, _proc, _vma in self.twins:
            led = kernel.audit.ledger
            frames = kernel.frames
            assert np.array_equal(led.live, frames.allocated)
            live = np.nonzero(led.live)[0]
            assert np.array_equal(led.alloc_pid[live], frames.owner[live])

    @invariant()
    def mapped_frames_have_live_records(self):
        """Every page-table-reachable frame is live, mirrors agree."""
        for kernel, proc, _vma in self.twins:
            led = kernel.audit.ledger
            pt = proc.page_table
            for vpn, pte in pt.base.items():
                assert led.live[pte.frame], (vpn, pte.frame)
                assert pt._mframe[vpn] == pte.frame
            for hvpn, hpte in pt.huge.items():
                block = led.live[hpte.frame:hpte.frame + PAGES_PER_HUGE]
                assert block.all(), hvpn
                assert pt._mhuge[hvpn] == hpte.frame

    @invariant()
    def freed_frames_marked_freed(self):
        """A dead frame's newest ring event is the free that killed it."""
        for kernel, _proc, _vma in self.twins:
            led = kernel.audit.ledger
            dead = np.nonzero(~led.live & (led.ev_len > 0))[0]
            for frame in dead.tolist():
                name, _epoch, _arg = led.frame_events(frame)[-1]
                assert name == "freed", (frame, led.frame_events(frame))

    @invariant()
    def twin_ledgers_identical(self):
        led0 = self.twins[0][0].audit.ledger
        led1 = self.twins[1][0].audit.ledger
        for column in _LEDGER_COLUMNS:
            assert np.array_equal(getattr(led0, column),
                                  getattr(led1, column)), column


AuditTwinMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
TestAuditProvenance = AuditTwinMachine.TestCase
