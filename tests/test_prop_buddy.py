"""Property-based tests for the buddy allocator (hypothesis).

Invariants checked under arbitrary alloc/free/zeroing interleavings:

* page conservation: free_pages + allocated == total, always;
* free-list exactness: every free block is tracked at exactly one order,
  blocks never overlap, and their union is exactly the non-allocated
  frame set;
* zero-list soundness: a block on a zero list contains only zero-content
  frames (mapping a "zero" block without clearing is *always* safe);
* maximal coalescing: no two free buddy blocks of the same order remain
  unmerged.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameTable

NUM_FRAMES = 1024


class BuddyMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.frames = FrameTable(NUM_FRAMES)
        self.buddy = BuddyAllocator(self.frames)
        self.live: list[tuple[int, int]] = []  # (start, order)

    @rule(order=st.integers(0, 9), prefer_zero=st.booleans())
    def alloc(self, order, prefer_zero):
        got = self.buddy.try_alloc(order, prefer_zero)
        if got is not None:
            start, zeroed = got
            if zeroed:
                assert self.frames.zero_mask(start, 1 << order).all()
            self.live.append((start, order))

    @rule(idx=st.integers(0, 200))
    def free_block(self, idx):
        if not self.live:
            return
        start, order = self.live.pop(idx % len(self.live))
        self.buddy.free(start, order)

    @rule(idx=st.integers(0, 200), offset=st.integers(0, 511))
    def dirty_a_page(self, idx, offset):
        if not self.live:
            return
        start, order = self.live[idx % len(self.live)]
        self.frames.write(start + (offset % (1 << order)), first_nonzero=0)

    @rule()
    def prezero_step(self):
        block = self.buddy.pop_nonzero_block()
        if block is not None:
            self.buddy.reinsert_zeroed(*block)

    @invariant()
    def conservation(self):
        live_pages = sum(1 << order for _, order in self.live)
        assert self.buddy.free_pages + live_pages == NUM_FRAMES
        assert self.frames.allocated_count() == live_pages

    @invariant()
    def free_lists_exact(self):
        seen = set()
        for start, order, zeroed in self.buddy.iter_free_blocks():
            block = set(range(start, start + (1 << order)))
            assert not (block & seen), "overlapping free blocks"
            seen |= block
            assert not self.frames.allocated[start:start + (1 << order)].any()
            if zeroed:
                assert self.frames.zero_mask(start, 1 << order).all()
        unallocated = NUM_FRAMES - self.frames.allocated_count()
        assert len(seen) == unallocated

    @invariant()
    def maximally_coalesced(self):
        orders = dict(self.buddy._block_order)
        for start, order in orders.items():
            if order >= self.buddy.max_order:
                continue
            buddy = start ^ (1 << order)
            assert orders.get(buddy) != order, (
                f"buddies {start}/{buddy} at order {order} left unmerged"
            )


BuddyMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestBuddyProperties = BuddyMachine.TestCase


@given(st.lists(st.integers(0, 9), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_alloc_all_then_free_all_restores_pristine_state(orders):
    frames = FrameTable(NUM_FRAMES)
    buddy = BuddyAllocator(frames)
    pristine = buddy.free_block_counts()
    live = []
    for order in orders:
        got = buddy.try_alloc(order)
        if got is not None:
            live.append((got[0], order))
    for start, order in reversed(live):
        buddy.free(start, order)
    assert buddy.free_pages == NUM_FRAMES
    assert buddy.free_block_counts() == pristine


@given(st.integers(1, NUM_FRAMES), st.integers(0, NUM_FRAMES - 1))
@settings(max_examples=60, deadline=None)
def test_free_range_conserves(count, start):
    frames = FrameTable(NUM_FRAMES)
    buddy = BuddyAllocator(frames)
    count = min(count, NUM_FRAMES - start)
    if count <= 0:
        return
    # allocate everything, then free an arbitrary range
    while buddy.try_alloc(0) is not None:
        pass
    buddy.free_range(start, count)
    assert buddy.free_pages == count
    assert not frames.allocated[start:start + count].any()
