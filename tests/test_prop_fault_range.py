"""Property test: the batched fault path is *exactly* scalar-equivalent.

For random interleavings of touches (with per-page work and pacing),
madvise frees, promotions and demotions, running the ops through
``Kernel.fault_range`` + the batched madvise path must leave every piece
of policy-visible state byte-for-byte identical to per-page
``Kernel.fault`` calls: page tables (including flag bits), rmap, buddy
free lists (contents *and* dict order, which drives future allocations),
frame-table arrays and fault counters.  Latency totals may differ only
by float rounding (they are charged as ``count x per-page cost``).

The equivalence extends to the tracepoint stream: both paths must emit
the *same events in the same order* — kind, process, page and detail
exactly equal, spans equal up to the same float-rounding tolerance — so
a trace of a batched run explains it as faithfully as a scalar one.

Budget stops are covered deterministically in ``tests/test_fault_range``
(a razor-edge budget that is an exact float multiple of the per-page
increment could legitimately round to a different page count, so random
budgets would make this property flaky by construction).
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro import trace
from repro.errors import OutOfMemoryError
from repro.experiments import POLICIES, Scale
from repro.kernel.kernel import Kernel, KernelConfig
from repro.units import MB
from repro.vm.process import Process
from repro.workloads.base import ContentSpec, Phase, Workload

REGION_PAGES = 2048  # 8 MiB heap on a 16 MiB machine
NUM_REGIONS = REGION_PAGES // 512

POLICY_NAMES = ["hawkeye-g", "linux-2mb", "linux-4kb", "freebsd", "ingens-90"]


class _Idle(Workload):
    name = "prop"

    def build_phases(self):
        return [Phase("idle", duration_us=1.0)]


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("touch"),
            st.integers(0, REGION_PAGES - 1),
            st.integers(1, REGION_PAGES),
            st.sampled_from([0.0, 1.0]),   # work_per_page_us
            st.sampled_from([0.0, 4.0]),   # pace_us
        ),
        st.tuples(
            st.just("free"),
            st.integers(0, REGION_PAGES - 1),
            st.integers(1, 700),
            st.just(0.0),
            st.just(0.0),
        ),
        st.tuples(st.just("promote"), st.integers(0, NUM_REGIONS - 1),
                  st.just(0), st.just(0.0), st.just(0.0)),
        st.tuples(st.just("demote"), st.integers(0, NUM_REGIONS - 1),
                  st.just(0), st.just(0.0), st.just(0.0)),
    ),
    min_size=1,
    max_size=12,
)


def _build(policy_name: str, batched: bool):
    Process._next_pid = 1  # class-global counter: reset so owner arrays compare
    kernel = Kernel(KernelConfig(mem_bytes=16 * MB), POLICIES[policy_name](Scale(1 / 128)))
    kernel.batched_faults = batched
    tracer = trace.attach(kernel)
    run = kernel.spawn(_Idle())
    proc = run.proc
    kernel.mmap(proc, REGION_PAGES * 4096, "heap")
    return kernel, proc, tracer


def _apply(kernel, proc, ops, batched) -> tuple[float, bool]:
    content = ContentSpec(first_nonzero=9)
    vma = kernel.find_vma(proc, "heap")
    total = 0.0
    try:
        for kind, a, b, work, pace in ops:
            if kind == "touch":
                vpn0 = vma.start + a
                n = min(b, REGION_PAGES - a)
                if batched:
                    consumed, pages = kernel.fault_range(
                        proc, vpn0, n, content=content, work_us=work, pace_us=pace
                    )
                    assert pages == n
                    total += consumed
                else:
                    for vpn in range(vpn0, vpn0 + n):
                        cost = kernel.fault(proc, vpn)
                        translated = proc.page_table.translate(vpn)
                        if translated is not None:
                            kernel.frames.write(
                                translated[0], content.first_nonzero, content.shared_tag
                            )
                        total += max(cost + work, pace)
            elif kind == "free":
                n = min(b, REGION_PAGES - a)
                total += kernel.madvise_free(proc, vma.start + a, n)
            elif kind == "promote":
                kernel.promote_region(proc, (vma.start >> 9) + a)
            elif kind == "demote":
                hvpn = (vma.start >> 9) + a
                if hvpn in proc.page_table.huge:
                    kernel.demote_region(proc, hvpn)
    except OutOfMemoryError:
        return total, True
    return total, False


def _snapshot(kernel, proc) -> dict:
    pt = proc.page_table
    return {
        "base": {
            vpn: (p.frame, p.accessed, p.dirty, p.shared_zero, p.shared_cow)
            for vpn, p in pt.base.items()
        },
        "huge": {h: (p.frame, p.accessed, p.dirty) for h, p in pt.huge.items()},
        "zero_lists": [list(d) for d in kernel.buddy._zero],
        "nonzero_lists": [list(d) for d in kernel.buddy._nonzero],
        "free_pages": kernel.buddy.free_pages,
        "rmap": {f: (pr.pid, v) for f, (pr, v) in kernel._rmap.items()},
        "kstats": (kernel.stats.faults, kernel.stats.huge_faults, kernel.stats.cow_faults),
        "pstats": (proc.stats.faults, proc.stats.huge_faults, proc.stats.cow_faults),
        "residents": {
            h: r.resident for h, r in proc.regions.items() if r.resident
        } if hasattr(proc, "regions") else None,
    }


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@settings(max_examples=25, deadline=None)
@given(ops=ops_strategy)
def test_batched_equals_scalar(policy_name, ops):
    ks, ps, ts = _build(policy_name, batched=False)
    scalar_total, scalar_oom = _apply(ks, ps, ops, batched=False)
    kb, pb, tb = _build(policy_name, batched=True)
    batched_total, batched_oom = _apply(kb, pb, ops, batched=True)

    assert scalar_oom == batched_oom
    # Event-stream equality: same tracepoints, same order, same spans
    # (up to the count x per-page float-rounding the latency totals get).
    assert ts.dropped == 0 and tb.dropped == 0
    meta_s = [(e.t_us, e.kind, e.process, e.page, e.detail) for e in ts.events]
    meta_b = [(e.t_us, e.kind, e.process, e.page, e.detail) for e in tb.events]
    assert meta_b == meta_s, f"{policy_name}: event streams diverged"
    assert [e.span_us for e in tb.events] == pytest.approx(
        [e.span_us for e in ts.events], rel=1e-9, abs=1e-6
    )
    snap_s, snap_b = _snapshot(ks, ps), _snapshot(kb, pb)
    for key in snap_s:
        assert snap_s[key] == snap_b[key], f"{policy_name}: {key} diverged"
    frames_s, frames_b = ks.frames, kb.frames
    assert np.array_equal(frames_s.allocated, frames_b.allocated)
    assert np.array_equal(frames_s.first_nonzero, frames_b.first_nonzero)
    assert np.array_equal(frames_s.content_tag, frames_b.content_tag)
    assert np.array_equal(frames_s.owner, frames_b.owner)
    # Latency totals are count x per-page charges: float rounding only.
    assert batched_total == pytest.approx(scalar_total, rel=1e-9, abs=1e-6)
    assert pb.stats.fault_time_us == pytest.approx(ps.stats.fault_time_us, rel=1e-9, abs=1e-6)
    assert pb.fault_time_epoch_us == pytest.approx(ps.fault_time_epoch_us, rel=1e-9, abs=1e-6)
