"""Property tests: heat monitoring regions partition spans and conserve counts.

The acceptance bar for the spatial monitor is structural: after every
sample — through arbitrary merge/split churn and VMA-layout changes —
the monitoring regions must still partition the monitored spans
*exactly*, and the split/merge step must conserve the sampled access
counts and EMA mass it started from.  These tests drive
:class:`repro.heat.ProcessHeat`'s region machinery directly with
synthetic access-bit samples (the same ``(sorted hvpns, prefix-sum)``
shape ``on_sample`` derives from the region table), so hypothesis can
explore span layouts and weight distributions no catalog workload hits.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import heat

ALPHA = 0.3


@st.composite
def span_layout(draw):
    """Disjoint, sorted, non-empty hvpn intervals (a VMA extent set)."""
    cuts = sorted(draw(st.lists(st.integers(0, 400), min_size=2,
                                max_size=8, unique=True)))
    spans = tuple((cuts[i], cuts[i + 1])
                  for i in range(0, len(cuts) - 1, 2)
                  if cuts[i] < cuts[i + 1])
    if not spans:
        spans = ((cuts[0], cuts[-1]),)
    return spans


@st.composite
def sample_round(draw):
    """One access-bit sample: a span layout plus per-hvpn weights."""
    spans = draw(span_layout())
    hvpns = [h for s, e in spans for h in range(s, e)]
    chosen = draw(st.lists(st.sampled_from(hvpns), unique=True,
                           max_size=min(len(hvpns), 40)))
    weights = {h: draw(st.integers(0, 512)) for h in chosen}
    return spans, weights


def fold(state: heat.ProcessHeat, spans, weights):
    """Feed one synthetic sample through the real region machinery.

    Mirrors the region section of :meth:`ProcessHeat.on_sample`: sync
    the layout, recompute per-region sums from the sample's prefix-sum
    array, then merge and split.  Returns the (sample, ema) totals as
    they stood *before* merge/split, so conservation can be checked
    against what the reshaping step was handed.
    """
    if spans != state.spans:
        state._sync_spans(spans)
    items = sorted(weights.items())
    sh = np.array([h for h, _ in items], dtype=np.int64)
    w = np.array([v for _, v in items], dtype=np.int64)
    cum = np.concatenate(([0], np.cumsum(w)))
    starts = np.fromiter((r.start for r in state.regions),
                         dtype=np.int64, count=len(state.regions))
    ends = np.fromiter((r.end for r in state.regions),
                       dtype=np.int64, count=len(state.regions))
    sums = cum[np.searchsorted(sh, ends)] - cum[np.searchsorted(sh, starts)]
    for r, s in zip(state.regions, sums.tolist()):
        r.sample = int(s)
        r.ema = ALPHA * s + (1.0 - ALPHA) * r.ema
        r.age += 1
    before_sample = sum(r.sample for r in state.regions)
    before_ema = sum(r.ema for r in state.regions)
    state._merge_similar()
    state._enforce_budget()
    state._split_for_budget(sh, cum)
    return before_sample, before_ema


def check_partition(state: heat.ProcessHeat, spans):
    """Regions sorted, non-empty, abutting; coalesced they equal spans."""
    rebuilt, cursor = [], None
    for r in state.regions:
        assert r.start < r.end
        if cursor is not None and r.start == cursor:
            rebuilt[-1] = (rebuilt[-1][0], r.end)
        else:
            rebuilt.append((r.start, r.end))
        cursor = r.end
    assert tuple(rebuilt) == tuple(spans)


def make_state(max_regions: int) -> heat.ProcessHeat:
    proc = SimpleNamespace(pid=1, name="p")
    return heat.ProcessHeat(proc, nbins=16, history=8, min_regions=4,
                            max_regions=max_regions,
                            merge_threshold=heat.MERGE_THRESHOLD)


@settings(max_examples=60, deadline=None)
@given(rounds=st.lists(sample_round(), min_size=1, max_size=5),
       max_regions=st.integers(4, 48))
def test_partition_and_conservation(rounds, max_regions):
    state = make_state(max_regions)
    for spans, weights in rounds:
        before_sample, before_ema = fold(state, spans, weights)
        # split/merge conserve the access counts they were handed,
        # exactly — and those equal the sample's total weight.
        assert sum(r.sample for r in state.regions) == before_sample
        assert before_sample == sum(weights.values())
        # EMA mass is conserved up to float addition order.
        after_ema = sum(r.ema for r in state.regions)
        assert abs(after_ema - before_ema) <= 1e-6 * max(1.0, before_ema)
        # the regions still partition the spans exactly, within budget
        # (floor: one region per span).
        check_partition(state, spans)
        assert len(state.regions) <= max(max_regions, len(spans))


@settings(max_examples=40, deadline=None)
@given(before=span_layout(), after=span_layout())
def test_sync_spans_repartitions_exactly(before, after):
    """Any layout change (grow/shrink/move) leaves an exact partition."""
    state = make_state(32)
    state._sync_spans(before)
    check_partition(state, before)
    # give regions some state so clipping paths are exercised
    for i, r in enumerate(state.regions):
        r.sample = 7 * (i + 1)
        r.ema = 3.5 * (i + 1)
    state._sync_spans(after)
    check_partition(state, after)
    # clipped regions never exceed what they held before
    assert all(r.sample >= 0 and r.ema >= 0.0 for r in state.regions)
