"""Property-based tests for kernel-level invariants.

A random interleaving of faults, madvise frees, promotions, demotions and
zero-page dedup must preserve:

* translation consistency — every mapped virtual page resolves to an
  allocated frame (or the canonical zero frame), and no frame is mapped
  by two pages;
* region accounting — ``RegionInfo.resident`` equals the actual mapped
  page count of the region;
* physical conservation — allocated frames == frames reachable from page
  tables + reserved frames.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import LinuxTHPPolicy
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process


class KernelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = Kernel(
            KernelConfig(mem_bytes=32 * MB),
            lambda k: LinuxTHPPolicy(k, khugepaged=False),
        )
        self.proc = Process("prop")
        self.kernel.processes.append(self.proc)
        self.kernel.pmu[self.proc.pid] = PMUCounters()
        self.vma = self.kernel.mmap(self.proc, 16 * MB, "heap")

    @rule(offset=st.integers(0, 4095))
    def fault(self, offset):
        self.kernel.fault(self.proc, self.vma.start + offset)

    @rule(offset=st.integers(0, 4000), npages=st.integers(1, 300))
    def madvise(self, offset, npages):
        npages = min(npages, self.vma.npages - offset)
        self.kernel.madvise_free(self.proc, self.vma.start + offset, npages)

    @rule(region=st.integers(0, 7))
    def promote(self, region):
        self.kernel.promote_region(self.proc, (self.vma.start >> 9) + region)

    @rule(region=st.integers(0, 7))
    def demote(self, region):
        hvpn = (self.vma.start >> 9) + region
        if hvpn in self.proc.page_table.huge:
            self.kernel.demote_region(self.proc, hvpn)

    @rule(region=st.integers(0, 7))
    def dedup(self, region):
        hvpn = (self.vma.start >> 9) + region
        if hvpn not in self.proc.page_table.huge:
            self.kernel.dedup_zero_pages(self.proc, hvpn)

    @rule(offset=st.integers(0, 4095))
    def write_data(self, offset):
        translated = self.proc.page_table.translate(self.vma.start + offset)
        if translated is not None:
            frame, huge = translated
            pte = self.proc.page_table.base.get(self.vma.start + offset)
            if pte is not None and not pte.private:
                return  # writes to shared pages go through fault()
            self.kernel.frames.write(frame, first_nonzero=offset % 4096)

    @rule(offset=st.integers(0, 4095), tag=st.integers(1, 4))
    def write_duplicate_content(self, offset, tag):
        """Give pages one of a few shared tags so ksm finds duplicates."""
        pte = self.proc.page_table.base.get(self.vma.start + offset)
        if pte is None or not pte.private:
            return
        self.kernel.frames.write(pte.frame, first_nonzero=0, tag=1_000_000 + tag)

    @rule()
    def ksm_pass(self):
        from repro.mem.samepage import SamePageMerger

        if not hasattr(self, "_merger"):
            self._merger = SamePageMerger(self.kernel, pages_per_sec=1e9)
        self._merger.run_epoch()

    @invariant()
    def translations_consistent(self):
        pt = self.proc.page_table
        frames = self.kernel.frames
        zero_frame = self.kernel.zero_registry.zero_frame
        seen: set[int] = set()
        shared_seen: dict[int, int] = {}
        for vpn, pte in pt.base.items():
            if pte.shared_zero:
                assert pte.frame == zero_frame
                continue
            assert frames.allocated[pte.frame], f"vpn {vpn} maps a free frame"
            if pte.shared_cow:
                shared_seen[pte.frame] = shared_seen.get(pte.frame, 0) + 1
                continue
            assert pte.frame not in seen
            seen.add(pte.frame)
        for hvpn, hpte in pt.huge.items():
            assert hpte.frame % PAGES_PER_HUGE == 0
            for i in range(PAGES_PER_HUGE):
                assert frames.allocated[hpte.frame + i]
                assert hpte.frame + i not in seen
                seen.add(hpte.frame + i)
        # private frames never alias shared canonicals, and sharer counts
        # never exceed the registry's refcounts
        registry = self.kernel.cow_registry
        for frame, count in shared_seen.items():
            assert frame not in seen, f"frame {frame} both private and shared"
            assert count <= registry.refcount.get(frame, 0)
            assert frames.pinned[frame]

    @invariant()
    def region_residency_matches(self):
        pt = self.proc.page_table
        for hvpn, region in self.proc.regions.items():
            if region.is_huge:
                assert hvpn in pt.huge
                assert region.resident == PAGES_PER_HUGE
            else:
                actual = len(pt.region_base_vpns(hvpn))
                assert region.resident == actual, f"region {hvpn}"

    @invariant()
    def physical_conservation(self):
        pt = self.proc.page_table
        mapped = sum(
            1 for pte in pt.base.values() if pte.private
        ) + len(pt.huge) * PAGES_PER_HUGE
        # + reserved zero frame + ksm canonical frames
        overhead = 1 + len(self.kernel.cow_registry.refcount)
        assert self.kernel.frames.allocated_count() == mapped + overhead
        assert (
            self.kernel.buddy.free_pages + mapped + overhead
            == self.kernel.buddy.total_pages
        )


KernelMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
TestKernelProperties = KernelMachine.TestCase
