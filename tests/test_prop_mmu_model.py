"""Property-based tests for the MMU overhead model.

Monotonicity and bounds that must hold for *any* load, because policies
rely on them directionally: more promotion never increases overhead,
higher access rates never decrease it, and the saturating form keeps
overhead inside [0, 1).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.patterns import Pattern
from repro.tlb.mmu_model import MMUModel, RegionLoad

MODEL = MMUModel()

loads_strategy = st.lists(
    st.builds(
        RegionLoad,
        touched_regions=st.integers(1, 20_000),
        coverage=st.floats(1, 512),
        promoted_fraction=st.floats(0, 1),
        weight=st.floats(0.05, 1.0),
        pattern=st.sampled_from(list(Pattern)),
        stride=st.sampled_from([4, 8, 64, 512]),
    ),
    min_size=1,
    max_size=5,
)


@given(loads_strategy, st.floats(0.1, 200))
@settings(max_examples=120, deadline=None)
def test_overhead_bounded(loads, rate):
    epoch = MODEL.epoch(loads, rate)
    assert 0.0 <= epoch.overhead < 1.0
    assert epoch.walk_cycles_per_useful >= 0.0
    assert 0.0 <= epoch.tlb_miss_rate <= 1.0
    assert epoch.miss_base <= 1.0 and epoch.miss_huge <= 1.0


@given(loads_strategy, st.floats(0.1, 100), st.floats(1.1, 4.0))
@settings(max_examples=80, deadline=None)
def test_overhead_monotone_in_access_rate(loads, rate, factor):
    low = MODEL.epoch(loads, rate).overhead
    high = MODEL.epoch(loads, rate * factor).overhead
    assert high >= low - 1e-12


@given(
    st.integers(100, 20_000),
    st.floats(4, 512),
    st.floats(0.1, 100),
)
@settings(max_examples=80, deadline=None)
def test_promotion_helps_covered_regions(touched, coverage, rate):
    """Full promotion never hurts a region with meaningful coverage.

    (Coverage 1 is the documented exception — see the regression test
    below — which is exactly §2.3's argument for coverage-based ranking.)
    """
    def overhead(promoted):
        load = RegionLoad(touched, coverage, promoted, 1.0, Pattern.RANDOM)
        return MODEL.epoch([load], rate).overhead

    assert overhead(1.0) <= overhead(0.0) + 1e-6


def test_promotion_useless_for_coverage_one_regions():
    """§2.3 in model form: a region with one hot base page gains nothing
    from promotion — the TLB entry count is unchanged (and the scarcer
    2 MiB L1 entries can even make it marginally worse)."""
    def overhead(promoted):
        load = RegionLoad(1033, 1.0, promoted, 1.0, Pattern.RANDOM)
        return MODEL.epoch([load], 1.0).overhead

    assert overhead(0.0) == 0.0
    assert overhead(1.0) >= overhead(0.0)
    assert overhead(1.0) < 1e-4  # and the difference is negligible


@given(st.integers(1, 20_000), st.floats(1, 512), st.floats(0.1, 100))
@settings(max_examples=80, deadline=None)
def test_strided_never_worse_than_random(touched, coverage, rate):
    def overhead(pattern):
        load = RegionLoad(touched, coverage, 0.0, 1.0, pattern)
        return MODEL.epoch([load], rate).overhead

    assert overhead(Pattern.STRIDED) <= overhead(Pattern.RANDOM) + 1e-9


@given(st.integers(1, 20_000), st.floats(1, 512), st.floats(0.1, 100))
@settings(max_examples=80, deadline=None)
def test_sequential_beats_random_in_thrash_regime(touched, coverage, rate):
    """When the working set exceeds TLB reach (the regime the paper's
    sequential-vs-random comparison lives in), streaming always wins.
    Within TLB reach, the model charges streams their compulsory
    per-page miss while random reuse hits — a documented simplification."""
    load_random = RegionLoad(touched, coverage, 0.0, 1.0, Pattern.RANDOM)
    epoch_random = MODEL.epoch([load_random], rate)
    if epoch_random.miss_base <= 0.13:  # not thrashing: regime excluded
        return
    load_seq = RegionLoad(touched, coverage, 0.0, 1.0, Pattern.SEQUENTIAL)
    assert MODEL.epoch([load_seq], rate).overhead <= epoch_random.overhead + 1e-9


@given(st.integers(1, 5000), st.floats(1, 512), st.floats(0.1, 100))
@settings(max_examples=60, deadline=None)
def test_charge_consistent_with_overhead(touched, coverage, rate):
    from repro.tlb.perf import PMUCounters

    load = RegionLoad(touched, coverage, 0.0, 1.0, Pattern.RANDOM)
    epoch = MODEL.epoch([load], rate)
    pmu = PMUCounters()
    epoch.charge(pmu, useful_us=1234.5)
    assert pmu.read_overhead() == __import__("pytest").approx(epoch.overhead, abs=1e-9)
