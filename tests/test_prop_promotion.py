"""Property-based test for the promotion engine's budget accounting.

Invariant (paper §3.4 + the budget bugfix): one fresh epoch promotes
exactly ``min(floor(rate), promotable regions)`` — stale access_map
entries (regions promoted behind the engine's back, or entries pointing
at nonexistent regions) are cleaned up for free and never burn budget.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.access_map import AccessMap
from repro.units import MB, PAGES_PER_HUGE
from tests.test_fault import make_proc
from tests.test_promotion import engine_for, make_kernel

#: per-region disposition drawn by the strategy.
VALID, STALE_PROMOTED, ABSENT = "valid", "stale-promoted", "absent"

region_states = st.lists(
    st.tuples(
        st.sampled_from([VALID, STALE_PROMOTED, ABSENT]),
        st.integers(1, 511),  # access-map bucket value (coverage)
    ),
    min_size=1,
    max_size=6,
)


@given(
    states=region_states,
    rate=st.integers(1, 8),
    ghost_entries=st.integers(0, 3),
)
@settings(max_examples=20, deadline=None)
def test_epoch_promotes_min_budget_promotable(states, rate, ghost_entries):
    kernel = make_kernel()
    nregions = len(states)
    kernel.fragmenter.fragment(keep_fraction=0.02)
    proc, vma = make_proc(kernel, nbytes=nregions * 2 * MB)
    for r in range(nregions):
        base = vma.start + r * PAGES_PER_HUGE
        for i in range(PAGES_PER_HUGE):
            kernel.fault(proc, base + i)
    kernel.fragmenter.release_all()

    amap = AccessMap()
    hvpn0 = vma.start >> 9
    promotable = 0
    for r, (state, coverage) in enumerate(states):
        if state == ABSENT:
            continue
        amap.update(hvpn0 + r, coverage)
        if state == STALE_PROMOTED:
            assert kernel.promote_region(proc, hvpn0 + r) is not None
        else:
            promotable += 1
    for g in range(ghost_entries):  # entries with no backing region at all
        amap.update(hvpn0 + nregions + 100 + g, 300)

    engine = engine_for(kernel, {proc.pid: amap}, rate=float(rate))
    done = engine.run_epoch()
    assert done == min(rate, promotable)
    assert engine._limiter.available >= 0.0
    # Valid regions the budget did not cover are still waiting in the
    # map; stale/ghost entries may remain too (they are only cleaned
    # when the scan reaches them) but never count as promotions.
    waiting = [
        h for h in amap.iter_promotion_order()
        if h < hvpn0 + nregions and not proc.regions[h].is_huge
    ]
    assert len(waiting) == promotable - done
