"""Property-based tests for the kernel with swap enabled.

Extends the kernel state machine: under memory pressure, faults trigger
swap-outs instead of OOM; the conservation invariant gains a swap term.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import LinuxTHPPolicy
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process


class SwapKernelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # memory deliberately smaller than the VMA: faults will swap
        self.kernel = Kernel(
            KernelConfig(mem_bytes=8 * MB, swap_bytes=64 * MB),
            lambda k: LinuxTHPPolicy(k, khugepaged=False),
        )
        self.proc = Process("swapprop")
        self.kernel.processes.append(self.proc)
        self.kernel.pmu[self.proc.pid] = PMUCounters()
        self.vma = self.kernel.mmap(self.proc, 24 * MB, "heap")

    @rule(offset=st.integers(0, 6143))
    def fault(self, offset):
        self.kernel.fault(self.proc, self.vma.start + offset)

    @rule(offset=st.integers(0, 6000), npages=st.integers(1, 200))
    def madvise(self, offset, npages):
        npages = min(npages, self.vma.npages - offset)
        self.kernel.madvise_free(self.proc, self.vma.start + offset, npages)

    @rule(region=st.integers(0, 11))
    def promote(self, region):
        self.kernel.promote_region(self.proc, (self.vma.start >> 9) + region)

    @invariant()
    def swapped_pages_are_unmapped(self):
        pt = self.proc.page_table
        for pid, vpn in self.kernel.swap.swapped:
            assert pid == self.proc.pid
            assert not pt.is_mapped(vpn), f"swapped vpn {vpn} still mapped"

    @invariant()
    def no_page_both_resident_and_swapped(self):
        pt = self.proc.page_table
        swapped_vpns = {v for _, v in self.kernel.swap.swapped}
        assert not (swapped_vpns & set(pt.base)), "page mapped AND swapped"

    @invariant()
    def conservation_with_swap(self):
        pt = self.proc.page_table
        mapped = sum(
            1 for pte in pt.base.values() if not pte.shared_zero
        ) + len(pt.huge) * PAGES_PER_HUGE
        kernel = self.kernel
        assert kernel.frames.allocated_count() == mapped + 1  # + zero frame
        assert kernel.buddy.free_pages + mapped + 1 == kernel.buddy.total_pages

    @invariant()
    def swap_within_capacity(self):
        assert len(self.kernel.swap.swapped) <= self.kernel.swap.capacity_pages


SwapKernelMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=50, deadline=None
)
TestSwapKernelProperties = SwapKernelMachine.TestCase
