"""Scalar-vs-vectorized equivalence of the epoch engine.

The vectorized hot paths (``kernel.vectorized = True``, the default)
promise *bit-identical* behaviour to the scalar reference loops they
replaced.  A twin-kernel state machine drives two kernels — one
vectorized, one forced scalar — through the same randomized sequence of
faults, frees, promotions, demotions, profile changes and access-bit
samples, and asserts after every step that

* page-table translations (base and huge) are identical,
* each page table's flat mirror arrays agree with its dicts,
* region-table metadata (residency, EMAs, idle bits) is float-exact, and
* every AccessMap bucket holds the same regions in the same order
  (order encodes recency — the promotion engine consumes it head first).

A directed NUMA test does the same for the hint-fault candidate harvest
with an interleave mempolicy forcing half the regions remote.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.hawkeye import HawkEyePolicy
from repro.experiments import reset_sim_state
from repro.kernel.kernel import Kernel, KernelConfig
from repro.numa.mempolicy import MemPolicy, MemPolicyKind
from repro.numa.topology import NumaTopology
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE, SEC
from repro.vm.process import Process
from repro.workloads.base import AccessProfile, RegionAccessSpec


def _build(vectorized: bool, nodes: int = 1, balance: bool = False):
    """One kernel + process + 16 MiB heap, base-mapped HawkEye."""
    kernel = Kernel(
        KernelConfig(
            mem_bytes=32 * MB,
            topology=NumaTopology(nodes=nodes),
            knumad_pages_per_sec=1000.0 if balance else 0.0,
        ),
        lambda k: HawkEyePolicy(k, huge_faults=False, prezero_enabled=False),
    )
    kernel.vectorized = vectorized
    proc = Process("prop")
    kernel.processes.append(proc)
    kernel.pmu[proc.pid] = PMUCounters()
    vma = kernel.mmap(proc, 16 * MB, "heap")
    return kernel, proc, vma


class TwinMachine(RuleBasedStateMachine):
    """Drive a vectorized and a scalar kernel through identical ops."""

    def __init__(self):
        super().__init__()
        self.twins = [_build(True), _build(False)]

    @rule(offset=st.integers(0, 4095))
    def fault(self, offset):
        for kernel, proc, vma in self.twins:
            kernel.fault(proc, vma.start + offset)

    @rule(offset=st.integers(0, 4000), npages=st.integers(1, 300))
    def madvise(self, offset, npages):
        for kernel, proc, vma in self.twins:
            n = min(npages, vma.npages - offset)
            kernel.madvise_free(proc, vma.start + offset, n)

    @rule(region=st.integers(0, 7))
    def promote(self, region):
        for kernel, proc, vma in self.twins:
            kernel.promote_region(proc, (vma.start >> 9) + region)

    @rule(region=st.integers(0, 7))
    def demote(self, region):
        for kernel, proc, vma in self.twins:
            hvpn = (vma.start >> 9) + region
            if hvpn in proc.page_table.huge:
                kernel.demote_region(proc, hvpn)

    @rule(cov_hot=st.integers(0, 600), cov_cold=st.integers(0, 600),
          hot_len=st.floats(0.1, 1.0), cold_start=st.floats(0.0, 0.9))
    def set_profile(self, cov_hot, cov_cold, hot_len, cold_start):
        """Swap the access profile both samplers read (covers >512 clip)."""
        profile = AccessProfile(specs=[
            RegionAccessSpec("heap", coverage=cov_hot, hot_len=hot_len),
            RegionAccessSpec("heap", coverage=cov_cold,
                             hot_start=cold_start, hot_len=0.3),
        ])
        for _kernel, proc, _vma in self.twins:
            proc.access_profile = profile

    @rule()
    def sample(self):
        for kernel, _proc, _vma in self.twins:
            kernel._sample_access_bits()

    # -- equivalence invariants ----------------------------------------- #

    @invariant()
    def translations_identical(self):
        (_, p0, _), (_, p1, _) = self.twins
        pt0, pt1 = p0.page_table, p1.page_table
        assert {v: (e.frame, e.shared_zero, e.shared_cow)
                for v, e in pt0.base.items()} == \
               {v: (e.frame, e.shared_zero, e.shared_cow)
                for v, e in pt1.base.items()}
        assert {h: e.frame for h, e in pt0.huge.items()} == \
               {h: e.frame for h, e in pt1.huge.items()}

    @invariant()
    def mirrors_match_dicts(self):
        import numpy as np

        for _kernel, proc, _vma in self.twins:
            pt = proc.page_table
            mapped = np.nonzero(pt._mframe >= 0)[0]
            assert set(mapped.tolist()) == set(pt.base)
            for vpn, pte in pt.base.items():
                assert pt._mframe[vpn] == pte.frame
                assert bool(pt._mpriv[vpn]) == pte.private
            assert int(pt._mpriv.sum()) == sum(
                1 for pte in pt.base.values() if pte.private)
            hmapped = np.nonzero(pt._mhuge >= 0)[0]
            assert set(hmapped.tolist()) == set(pt.huge)
            for hvpn, pte in pt.huge.items():
                assert pt._mhuge[hvpn] == pte.frame

    @invariant()
    def regions_identical(self):
        (_, p0, _), (_, p1, _) = self.twins
        assert list(p0.regions.keys()) == list(p1.regions.keys())
        for hvpn in p0.regions.keys():
            r0, r1 = p0.regions[hvpn], p1.regions[hvpn]
            assert r0.resident == r1.resident
            assert r0.is_huge == r1.is_huge
            assert r0.coverage_ema == r1.coverage_ema  # float-exact
            assert r0.last_coverage == r1.last_coverage
            assert r0.idle == r1.idle
            assert r0.bloat_demoted == r1.bloat_demoted

    @invariant()
    def access_maps_identical(self):
        (k0, p0, _), (k1, p1, _) = self.twins
        m0 = k0.policy.access_maps.get(p0.pid)
        m1 = k1.policy.access_maps.get(p1.pid)
        if m0 is None or m1 is None:
            assert (m0 is None) == (m1 is None)
            return
        for b0, b1 in zip(m0.buckets, m1.buckets):
            assert list(b0) == list(b1)  # contents AND order


TwinMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
TestVectorizedEquivalence = TwinMachine.TestCase


def _drive_numa(vectorized: bool):
    """Interleaved placement + balancing: run samples, snapshot state."""
    reset_sim_state()
    kernel, proc, vma = _build(vectorized, nodes=2, balance=True)
    proc.mempolicy = MemPolicy(kind=MemPolicyKind.INTERLEAVE)
    for region in range(8):
        for page in range(0, PAGES_PER_HUGE, 64):
            kernel.fault(proc, vma.start + (region << 9) + page)
    proc.access_profile = AccessProfile(specs=[
        RegionAccessSpec("heap", coverage=200, hot_len=0.75),
    ])
    for _ in range(4):
        kernel._sample_access_bits()
        kernel.numa.on_epoch()
        kernel.now_us += SEC
    amap = kernel.policy.access_maps[proc.pid]
    return {
        "candidates": {h: ema for (_pid, h), ema
                       in kernel.numa._candidates.items()},
        "hint_faults": kernel.stats.numa_hint_faults,
        "migrated": kernel.stats.numa_pages_migrated,
        "buckets": [list(b) for b in amap.buckets],
        "emas": [(h, proc.regions[h].coverage_ema) for h in proc.regions],
        "counts": [kernel.numa.region_node_counts(proc, h)
                   for h in proc.regions],
    }


def test_numa_harvest_vectorized_matches_scalar():
    """Candidate set, EMAs (with the remote x0.5 discount), bucket order
    and migration totals are identical across the two harvest paths."""
    vec = _drive_numa(True)
    scalar = _drive_numa(False)
    assert vec == scalar
    assert vec["hint_faults"] > 0  # the interleave actually went remote
