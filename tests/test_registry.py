"""Tests for the Prometheus-style metrics registry.

The two load-bearing contracts are property-tested with hypothesis:
counters never move down across an arbitrary scrape sequence, and a
scrape survives a JSON encode/decode round trip byte-for-value exact
(the telemetry artifact is just a list of scrapes, so these two
properties are what make baselines trustworthy).
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    label_key,
)


# --------------------------------------------------------------------- #
# unit: label and declaration discipline                                 #
# --------------------------------------------------------------------- #


def test_label_key_sorted_and_invertible():
    assert label_key({}) == ""
    assert label_key({"b": "2", "a": "1"}) == "a=1,b=2"


def test_label_key_rejects_reserved_characters():
    with pytest.raises(MetricError):
        label_key({"a": "x=y"})
    with pytest.raises(MetricError):
        label_key({"a,b": "x"})


def test_family_rejects_wrong_labelset():
    fam = MetricFamily("faults", "counter", labelnames=("process",))
    with pytest.raises(MetricError):
        fam.labels(policy="x")
    with pytest.raises(MetricError):
        fam.labels()
    fam.labels(process="redis").inc()
    assert fam.labels(process="redis").value == 1.0


def test_family_rejects_unknown_kind():
    with pytest.raises(MetricError):
        MetricFamily("x", "summary")


def test_registry_redeclare_must_match():
    reg = MetricsRegistry()
    fam = reg.counter("faults", labelnames=("process",))
    # identical re-declaration returns the same family
    assert reg.counter("faults", labelnames=("process",)) is fam
    with pytest.raises(MetricError):
        reg.gauge("faults", labelnames=("process",))
    with pytest.raises(MetricError):
        reg.counter("faults", labelnames=("policy",))


def test_counter_contract():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricError):
        c.inc(-1)
    c.sync(10.0)
    assert c.value == 10.0
    c.sync(10.0)  # equal is fine
    with pytest.raises(MetricError):
        c.sync(9.0)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(5)
    g.dec(2)
    g.inc(-4)
    assert g.value == -1.0


def test_histogram_wraps_latency_histogram():
    h = Histogram()
    for v in (1.0, 3.0, 100.0):
        h.observe(v)
    assert h.count == 3
    assert h.hist.to_dict()["count"] == 3


def test_scrape_shape_and_ordering():
    reg = MetricsRegistry()
    reg.counter("zz", labelnames=("name",)).labels(name="b").inc(2)
    reg.counter("zz", labelnames=("name",)).labels(name="a").inc(1)
    reg.gauge("aa").child().set(7)
    reg.histogram("hh").child().observe(4.0)
    scrape = reg.scrape(1.5)
    assert scrape["t_s"] == 1.5
    assert list(scrape["counters"]["zz"]) == ["name=a", "name=b"]
    assert scrape["gauges"]["aa"] == {"": 7.0}
    assert scrape["histograms"]["hh"][""]["count"] == 1


# --------------------------------------------------------------------- #
# property: counters are monotonic across scrapes                        #
# --------------------------------------------------------------------- #

# a scrape schedule: per step, a list of (child, increment) applications
_increments = st.lists(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.floats(0.0, 1e6, allow_nan=False)),
        max_size=5),
    min_size=1, max_size=20)


@given(_increments)
@settings(max_examples=80, deadline=None)
def test_counters_monotonic_across_scrapes(schedule):
    reg = MetricsRegistry()
    fam = reg.counter("events", labelnames=("name",))
    scrapes = []
    for step in schedule:
        for name, amount in step:
            fam.labels(name=name).inc(amount)
        scrapes.append(reg.scrape(float(len(scrapes))))
    for key in ("name=a", "name=b", "name=c"):
        series = [s["counters"]["events"].get(key, 0.0) for s in scrapes]
        assert all(lo <= hi for lo, hi in zip(series, series[1:])), series


@given(st.lists(st.floats(0.0, 1e9, allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_counter_sync_accepts_any_nondecreasing_source(values):
    c = Counter()
    for total in sorted(values):
        c.sync(total)
    assert c.value == max(values)


# --------------------------------------------------------------------- #
# property: scrapes round-trip through JSON losslessly                   #
# --------------------------------------------------------------------- #

_names = st.sampled_from(["redis", "hacc", "kzerod", "x"])
_floats = st.floats(0.0, 1e12, allow_nan=False)


@given(
    counters=st.dictionaries(_names, _floats, max_size=4),
    gauges=st.dictionaries(_names, st.floats(-1e9, 1e9, allow_nan=False),
                           max_size=4),
    samples=st.lists(st.floats(0.001, 1e6, allow_nan=False), max_size=10),
    t=st.floats(0.0, 1e6, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_scrape_json_round_trip_lossless(counters, gauges, samples, t):
    reg = MetricsRegistry()
    cfam = reg.counter("counts", labelnames=("name",))
    for name, v in counters.items():
        cfam.labels(name=name).inc(v)
    gfam = reg.gauge("levels", labelnames=("name",))
    for name, v in gauges.items():
        gfam.labels(name=name).set(v)
    hist = reg.histogram("lat").child()
    for v in samples:
        hist.observe(v)
    scrape = reg.scrape(t)
    assert json.loads(json.dumps(scrape)) == scrape
