"""Tests for the baseline regression gate.

Covers the classifier bands (pass/warn/fail), structural statuses
(missing cell, new cell, vanished metric), baseline bless/save/load,
and — the proof the gate actually gates — a real sweep cache whose
telemetry is deliberately perturbed by a 10 % fault-latency slowdown
and must FAIL against the blessed baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.report.regress import (
    BaselineError,
    bless,
    compare,
    compare_metrics,
    format_report,
    load_baseline,
    save_baseline,
)
from repro.runner.cache import ResultCache
from repro.runner.registry import Cell
from repro.runner.scheduler import run_sweep


# --------------------------------------------------------------------- #
# classifier                                                             #
# --------------------------------------------------------------------- #


def _by_name(deltas):
    return {d.name: d for d in deltas}


def test_compare_metrics_bands():
    base = {"flat": 100.0, "drift": 100.0, "broken": 100.0}
    cur = {"flat": 100.5, "drift": 103.0, "broken": 120.0}
    deltas = _by_name(compare_metrics(base, cur, warn=0.01, fail=0.05))
    assert deltas["flat"].status == "pass"
    assert deltas["drift"].status == "warn"
    assert deltas["broken"].status == "fail"
    assert deltas["broken"].rel == pytest.approx(0.20)


def test_compare_metrics_symmetric():
    # an unexplained improvement is still an unexplained change
    deltas = _by_name(compare_metrics({"t": 100.0}, {"t": 80.0},
                                      warn=0.01, fail=0.05))
    assert deltas["t"].status == "fail"
    assert deltas["t"].rel == pytest.approx(-0.20)


def test_compare_metrics_appear_vanish_and_zero():
    deltas = _by_name(compare_metrics(
        {"gone": 5.0, "zero_ok": 0.0, "zero_bad": 0.0},
        {"new": 7.0, "zero_ok": 0.0, "zero_bad": 3.0},
        warn=0.01, fail=0.05))
    assert deltas["gone"].status == "fail"        # metric vanished
    assert deltas["new"].status == "new"          # appeared: visible, no gate
    assert deltas["zero_ok"].status == "pass"     # 0 -> 0
    assert deltas["zero_bad"].status == "fail"    # 0 -> nonzero: undefined
    assert "vanished" in deltas["gone"].describe()
    assert "new metric" in deltas["new"].describe()


def test_new_metrics_do_not_gate_but_vanished_do():
    """Additive telemetry (a freshly landed subsystem) must not fail the
    gate before it can be blessed; losing a tracked metric still must."""
    from repro.report.regress import CellComparison, RegressionReport

    added = compare_metrics({"t": 100.0}, {"t": 100.0, "heat.w.regions": 4.0},
                            warn=0.01, fail=0.05)
    worst = "pass"
    for delta in added:
        if delta.status == "fail":
            worst = "fail"
        elif delta.status == "warn" and worst == "pass":
            worst = "warn"
    cell = CellComparison("smoke/touch:x@128", worst, added)
    assert cell.status == "pass"
    assert [d.name for d in cell.flagged()] == ["heat.w.regions"]
    report = RegressionReport([cell], 0.01, 0.05)
    assert report.ok
    text = format_report(report)
    assert "1 new metric(s)" in text
    assert "outside bands" not in text

    vanished = _by_name(compare_metrics(
        {"t": 100.0, "heat.w.regions": 4.0}, {"t": 100.0},
        warn=0.01, fail=0.05))
    assert vanished["heat.w.regions"].status == "fail"


# --------------------------------------------------------------------- #
# whole-cache comparison against a real sweep                            #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def smoke_cache(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    run_sweep([Cell("smoke", "touch", "linux-4kb"),
               Cell("smoke", "touch", "hawkeye-g")], cache=cache)
    return cache


def test_bless_then_compare_is_clean(smoke_cache):
    baseline = bless(smoke_cache, note="test")
    assert baseline["version"] == 1
    assert len(baseline["cells"]) == 2
    # blessed metrics include telemetry-derived fault latency percentiles
    metrics = next(iter(baseline["cells"].values()))["metrics"]
    assert any(k.startswith("telemetry.") and ".hist.fault" in k
               for k in metrics)
    report = compare(baseline, smoke_cache)
    assert report.ok
    assert {c.status for c in report.cells} == {"pass"}
    text = format_report(report)
    assert "OK" in text and "2 pass" in text


def test_perturbed_fault_latency_fails_gate(smoke_cache):
    """The acceptance proof: a 10 % fault-latency slowdown must gate."""
    baseline = bless(smoke_cache)
    # simulate the *baseline* having been 10 % faster than the current
    # tree on every fault-latency metric — i.e. the current run regressed
    for cell in baseline["cells"].values():
        for name in cell["metrics"]:
            if "fault" in name and ("span_us" in name or ".p" in name
                                    or "avg_fault" in name):
                cell["metrics"][name] /= 1.10
    report = compare(baseline, smoke_cache)
    assert not report.ok
    assert all(c.status == "fail" for c in report.cells)
    flagged = [d for c in report.cells for d in c.flagged()
               if d.status == "fail"]
    assert flagged
    assert all(d.rel == pytest.approx(0.10, abs=1e-6) for d in flagged)
    assert "REGRESSION" in format_report(report)


def test_perturbed_cached_telemetry_fails_gate(smoke_cache, tmp_path):
    """Same proof from the other side: tamper with the cached telemetry."""
    baseline = bless(smoke_cache)
    tampered = ResultCache(tmp_path / "tampered")
    for src in smoke_cache.results_dir.glob("*.json"):
        envelope = json.loads(src.read_text())
        for artifact in envelope.get("telemetry") or []:
            for entry in artifact.get("attribution", {}).values():
                entry["span_us"] *= 1.10
        (tampered.results_dir).mkdir(parents=True, exist_ok=True)
        (tampered.results_dir / src.name).write_text(json.dumps(envelope))
    report = compare(baseline, tampered)
    assert not report.ok
    bad = {d.name for c in report.cells for d in c.flagged()}
    assert any("span_us" in name for name in bad)


def test_missing_and_new_cells(smoke_cache, tmp_path):
    baseline = bless(smoke_cache)
    baseline["cells"]["fig9/ghost:linux-4kb@128"] = {"metrics": {"x": 1.0}}
    report = compare(baseline, smoke_cache)
    assert not report.ok                      # missing cell gates
    statuses = {c.cell_id: c.status for c in report.cells}
    assert statuses["fig9/ghost:linux-4kb@128"] == "missing"
    assert "MISS" in format_report(report)

    del baseline["cells"]["fig9/ghost:linux-4kb@128"]
    removed = next(iter(baseline["cells"]))
    del baseline["cells"][removed]
    report = compare(baseline, smoke_cache)
    assert report.ok                          # new cells report but pass
    assert any(c.status == "new" for c in report.cells)


def test_band_overrides_beat_baseline_tolerance(smoke_cache):
    baseline = bless(smoke_cache, warn=0.5, fail=0.9)
    for cell in baseline["cells"].values():
        for name in list(cell["metrics"]):
            cell["metrics"][name] *= 1.02     # 2% drift everywhere
    assert compare(baseline, smoke_cache).ok  # inside the loose bands
    strict = compare(baseline, smoke_cache, warn=0.001, fail=0.01)
    assert not strict.ok


# --------------------------------------------------------------------- #
# baseline files                                                         #
# --------------------------------------------------------------------- #


def test_save_load_round_trip(smoke_cache, tmp_path):
    baseline = bless(smoke_cache, note="seed")
    path = save_baseline(baseline, tmp_path / "base.json")
    assert load_baseline(path) == baseline
    # stable formatting: re-saving produces identical bytes
    first = path.read_bytes()
    save_baseline(baseline, path)
    assert path.read_bytes() == first


def test_load_baseline_errors(tmp_path):
    with pytest.raises(BaselineError, match="cannot read"):
        load_baseline(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(bad)
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(BaselineError, match="no 'cells'"):
        load_baseline(empty)


def test_bless_empty_cache_raises(tmp_path):
    with pytest.raises(BaselineError, match="no cached cells"):
        bless(ResultCache(tmp_path / "void"))
