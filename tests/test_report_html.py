"""Tests for the self-contained HTML report renderer."""

from __future__ import annotations

import json
import re

from repro.report.html import LineChart, render_report
from repro.runner.cache import ResultCache


def _fake_envelope(cell_id, experiment, policy, result, telemetry=()):
    return {
        "cell_id": cell_id,
        "cell": {"experiment": experiment, "case": cell_id.split("/")[1].split(":")[0],
                 "policy": policy, "scale_denominator": 128},
        "result": result,
        "telemetry": list(telemetry),
        "timing": {"finished_at": 1.0, "wall_s": 0.1},
        "source": "cafe",
    }


def _seed_cache(tmp_path, envelopes):
    cache = ResultCache(tmp_path / "cache")
    cache.results_dir.mkdir(parents=True, exist_ok=True)
    for i, env in enumerate(envelopes):
        (cache.results_dir / f"k{i}.json").write_text(json.dumps(env))
    return cache


def test_report_renders_fig1_chart_and_tables(tmp_path):
    telemetry = [{
        "version": 1, "meta": {}, "scrapes": [],
        "attribution": {"fault": {"events": 10, "span_us": 42.5}},
        "histograms": {"fault.base": {"count": 10, "total_us": 42.5,
                                      "buckets": {"2": 10},
                                      "p50": 3.0, "p95": 3.9, "p99": 4.0}},
        "self_profile": {"wall_s": 0.5, "epochs": 100},
    }]
    envelopes = [
        _fake_envelope(
            "fig1/redis:hawkeye-g@128", "fig1", "hawkeye-g",
            {"rss_mb": 100.0, "useful_mb": 80.0, "recovered_pages": 7,
             "rss_series": {"times": [0.0, 1.0, 2.0],
                            "values": [10.0, 60.0, 100.0]}},
            telemetry),
        _fake_envelope(
            "fig1/redis:linux-2mb@128", "fig1", "linux-2mb",
            {"rss_mb": 140.0, "useful_mb": 80.0, "recovered_pages": 0,
             "rss_series": {"times": [0.0, 1.0, 2.0],
                            "values": [10.0, 90.0, 140.0]}}),
    ]
    cache = _seed_cache(tmp_path, envelopes)
    html = render_report(cache, title="test report")
    assert html.lstrip().startswith("<!DOCTYPE html>")
    # the fig1 chart: one polyline per policy, a legend naming both
    assert html.count("<polyline") == 2
    assert "hawkeye-g" in html and "linux-2mb" in html
    # attribution + self-profile tables from the telemetry artifact
    assert "fault" in html and "42.5" in html
    # offline by construction: no external URLs, no script src, no links
    assert "http://" not in html and "https://" not in html
    assert 'src="' not in html and "@import" not in html
    # hover layer ships its data inline
    assert 'type="application/json"' in html


def test_report_empty_cache_message(tmp_path):
    cache = ResultCache(tmp_path / "void")
    html = render_report(cache)
    assert "no cached" in html.lower()
    assert "<svg" not in html


def test_line_chart_geometry_stays_in_viewbox():
    chart = LineChart("t", "x", "y")
    chart.add_series("a", [(0.0, 0.0), (1.0, 123.4), (2.0, 50.0)])
    svg = chart.render()
    width = int(re.search(r'viewBox="0 0 (\d+) (\d+)"', svg).group(1))
    height = int(re.search(r'viewBox="0 0 (\d+) (\d+)"', svg).group(2))
    points = re.search(r'points="([^"]+)"', svg).group(1).split()
    for pair in points:
        x, y = map(float, pair.split(","))
        assert 0 <= x <= width and 0 <= y <= height


def test_line_chart_skips_empty_series():
    chart = LineChart("t", "x", "y")
    chart.add_series("empty", [])
    chart.add_series("full", [(0.0, 1.0), (1.0, 2.0)])
    svg = chart.render()
    assert svg.count("<polyline") == 1
