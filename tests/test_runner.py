"""Tests for the sweep runner: registry, cache, manifest, scheduler.

The scheduler tests register tiny throwaway experiments; worker
processes inherit them through fork, so no benchmark-scale cells run
here.  The determinism test does run one real ``smoke`` cell both
serially and through a 4-worker pool and requires byte-identical
envelopes modulo the ``timing`` block — the property the result cache
is built on.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    Cell,
    Manifest,
    ResultCache,
    UnknownCellError,
    cell_key,
    cells_for,
    execute_cell,
    experiment_names,
    parse_selectors,
    register,
    run_sweep,
    source_digest,
    unregister,
)

# --------------------------------------------------------------------- #
# registry                                                               #
# --------------------------------------------------------------------- #


def test_stock_experiments_registered():
    names = experiment_names()
    for expected in ("fig1", "tab1", "tab8", "tab9", "fig5", "smoke"):
        assert expected in names


def test_cells_for_enumerates_grid():
    cells = cells_for("tab8")
    assert len(cells) == 25  # 5 workloads x 5 policies
    assert len({c.cell_id for c in cells}) == 25
    assert all(c.scale_denominator == 128 for c in cells)


def test_cells_for_subgrid_and_validation():
    cells = cells_for("tab8", cases=("hacc-io",), policies=("linux-4kb",))
    assert [c.cell_id for c in cells] == ["tab8/hacc-io:linux-4kb@128"]
    with pytest.raises(UnknownCellError):
        cells_for("tab8", cases=("nope",))
    with pytest.raises(UnknownCellError):
        cells_for("tab8", policies=("nope",))
    with pytest.raises(UnknownCellError):
        cells_for("no-such-experiment")


def test_parse_selectors_grammar():
    assert parse_selectors(["smoke"]) == cells_for("smoke")
    assert parse_selectors(["smoke/touch"]) == cells_for("smoke")
    one = parse_selectors(["smoke:linux-4kb"])
    assert [c.cell_id for c in one] == ["smoke/touch:linux-4kb@128"]
    full = parse_selectors(["smoke/touch:hawkeye-g"])
    assert [c.cell_id for c in full] == ["smoke/touch:hawkeye-g@128"]
    # dedup preserves first-seen order
    both = parse_selectors(["smoke:linux-4kb", "smoke"])
    assert both[0].policy == "linux-4kb"
    assert len(both) == len(cells_for("smoke"))
    # 'all' covers every registered experiment
    everything = parse_selectors(["all"])
    assert {c.experiment for c in everything} == set(experiment_names())


def test_parse_selectors_scale_denominator():
    cells = parse_selectors(["smoke"], scale_denominator=64)
    assert all(c.scale_denominator == 64 for c in cells)
    assert cells[0].scale.factor == pytest.approx(1 / 64)


def test_register_rejects_unknown_policy_and_duplicates():
    with pytest.raises(UnknownCellError):
        register("bogus", "t", cases=("c",), policies=("not-a-policy",),
                 run=lambda c, p, s: {})
    register("dup-exp", "t", cases=("c",), policies=("linux-4kb",),
             run=lambda c, p, s: {})
    try:
        with pytest.raises(ValueError):
            register("dup-exp", "t", cases=("c",), policies=("linux-4kb",),
                     run=lambda c, p, s: {})
    finally:
        unregister("dup-exp")


def test_cell_config_roundtrip():
    cell = Cell("tab8", "hacc-io", "linux-4kb", 64)
    assert Cell.from_config(cell.config()) == cell


def test_execute_cell_validates():
    with pytest.raises(UnknownCellError):
        execute_cell(Cell("smoke", "nope", "linux-4kb"))
    with pytest.raises(UnknownCellError):
        execute_cell(Cell("smoke", "touch", "nope"))


# --------------------------------------------------------------------- #
# cache                                                                  #
# --------------------------------------------------------------------- #


def test_cell_key_sensitivity():
    digest = source_digest()
    a = Cell("smoke", "touch", "linux-4kb")
    key = cell_key(a, digest)
    assert key == cell_key(Cell("smoke", "touch", "linux-4kb"), digest)
    assert key != cell_key(Cell("smoke", "touch", "linux-2mb"), digest)
    assert key != cell_key(Cell("smoke", "touch", "linux-4kb", 64), digest)
    assert key != cell_key(a, "0" * 64)          # source changed
    assert key != cell_key(a, digest, version=2)  # semantics changed
    # extra key material (scenario digests) joins the hash; empty
    # material keeps the historical key
    assert key == cell_key(a, digest, key_material="")
    assert key != cell_key(a, digest, key_material="scenario:abc123")


def test_cache_roundtrip_and_corruption(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("abc") is None
    envelope = {"key": "abc", "result": {"x": 1}}
    path = cache.put("abc", envelope)
    assert cache.get("abc") == envelope
    assert len(cache) == 1
    assert list(cache.entries()) == [envelope]
    path.write_text("{not json")
    assert cache.get("abc") is None  # corrupt entry = miss, not an error
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_put_interleaved_writers_same_key(tmp_path, monkeypatch):
    """Two writers racing on one key must both complete and leave an
    intact envelope.

    Pre-fix both writers used the deterministic ``<key>.json.tmp``
    name: the second writer truncated the first's tmp file and renamed
    it into place, after which the first writer wrote its tail into the
    *renamed* inode (corrupting the published envelope) and then blew
    up renaming its now-missing tmp.  The interleave is reproduced
    deterministically by nesting the second ``put`` between the first
    writer's dump and its rename.
    """
    import repro.runner.cache as cache_mod

    cache = ResultCache(tmp_path)
    key = "cafebabe"
    first = {"key": key, "result": {"writer": "first", "pad": "x" * 4096}}
    second = {"key": key, "result": {"writer": "second"}}
    real_dump = json.dump
    state = {"nested": False}

    def interleaved_dump(obj, fh, **kwargs):
        real_dump(obj, fh, **kwargs)
        if not state["nested"]:
            state["nested"] = True
            # a second sweep process publishes the same key between
            # this writer's dump and its rename
            ResultCache(tmp_path).put(key, second)

    monkeypatch.setattr(cache_mod.json, "dump", interleaved_dump)
    cache.put(key, first)  # must not raise
    monkeypatch.undo()
    stored = cache.get(key)
    assert stored in (first, second)  # last-writer-wins, but intact
    # no stray tmp files left behind either way
    assert list(cache.results_dir.glob("*.tmp")) == []


# --------------------------------------------------------------------- #
# manifest                                                               #
# --------------------------------------------------------------------- #


def test_manifest_roundtrip_and_resume(tmp_path):
    path = tmp_path / "manifest.json"
    cells = cells_for("smoke")
    keys = {c: f"k{i}" for i, c in enumerate(cells)}
    manifest = Manifest(path)
    manifest.begin(cells, keys, source="deadbeef", jobs=2)
    manifest.mark(cells[0], "ok", wall_s=1.5, attempts=1)
    manifest.mark(cells[1], "failed", attempts=2, error="boom")
    manifest.save()

    loaded = Manifest.load(path)
    assert loaded is not None
    assert loaded.cells() == cells
    assert loaded.pending_cells() == cells[1:]  # failed + untouched
    assert loaded.summary() == {"ok": 1, "failed": 1, "pending": 1}
    # re-begin keeps completed entries with unchanged keys
    loaded.begin(cells, keys, source="deadbeef", jobs=1)
    assert loaded.summary()["ok"] == 1
    # a key change (source edit) resets the entry to pending
    loaded.begin(cells, {c: "new" for c in cells}, source="cafe", jobs=1)
    assert loaded.summary() == {"pending": 3}


def test_manifest_load_rejects_bad_files(tmp_path):
    assert Manifest.load(tmp_path / "missing.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    assert Manifest.load(bad) is None
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"version": 999, "cells": {}}))
    assert Manifest.load(wrong) is None


# --------------------------------------------------------------------- #
# scheduler                                                              #
# --------------------------------------------------------------------- #


@pytest.fixture
def failure_modes_experiment():
    def run(case, policy, scale):
        if case == "sleepy":
            import time

            time.sleep(30)
        if case == "crashy":
            import os

            os._exit(3)
        if case == "faulty":
            raise RuntimeError("kaboom")
        return {"case": case, "policy": policy}

    register("failure-modes", "scheduler test grid",
             cases=("fine", "sleepy", "crashy", "faulty"),
             policies=("linux-4kb",), run=run)
    yield
    unregister("failure-modes")


def test_sweep_isolates_failures(failure_modes_experiment):
    cells = [Cell("failure-modes", c, "linux-4kb")
             for c in ("fine", "crashy", "faulty")]
    report = run_sweep(cells, jobs=2, timeout_s=10.0, retries=1)
    by_case = {o.cell.case: o for o in report.outcomes}
    assert by_case["fine"].status == "ok"
    assert by_case["fine"].result == {"case": "fine", "policy": "linux-4kb"}
    assert by_case["crashy"].status == "crashed"
    assert by_case["crashy"].attempts == 2
    assert by_case["faulty"].status == "failed"
    assert "kaboom" in by_case["faulty"].error
    assert not report.ok
    assert report.counts() == {"ok": 1, "crashed": 1, "failed": 1}


def test_sweep_cell_timeout(failure_modes_experiment):
    cells = [Cell("failure-modes", "sleepy", "linux-4kb")]
    report = run_sweep(cells, jobs=2, timeout_s=0.5, retries=0)
    outcome = report.outcomes[0]
    assert outcome.status == "timeout"
    # sub-second budgets render with their precision, not as "0s"
    assert "0.5s budget" in outcome.error
    assert outcome.wall_s < 5.0


def test_guarded_execute_survives_late_alarm(failure_modes_experiment,
                                             monkeypatch):
    """SIGALRM firing between the cell finishing and the timer disarm
    must not escape _guarded_execute's never-raises contract.

    The alarm is injected deterministically: the first disarm call
    (``setitimer(..., 0.0)``) raises the pending signal exactly in the
    window the race occupies.  Pre-fix, ``_CellTimeout`` propagates out
    of the ``finally`` and kills the worker; post-fix the computed
    outcome survives and the handler is restored.
    """
    import os
    import signal as signal_mod

    from repro.runner import scheduler as scheduler_mod

    cell = Cell("failure-modes", "fine", "linux-4kb")
    before = signal_mod.getsignal(signal_mod.SIGALRM)
    real_setitimer = signal_mod.setitimer
    fired = {"done": False}

    def racy_setitimer(which, seconds, *rest):
        if seconds == 0.0 and not fired["done"]:
            fired["done"] = True
            # queue a SIGALRM while the cell's handler is still live;
            # the Python-level handler raises _CellTimeout at the next
            # bytecode boundary — inside the disarm path.
            os.kill(os.getpid(), signal_mod.SIGALRM)
        return real_setitimer(which, seconds, *rest)

    monkeypatch.setattr(scheduler_mod.signal, "setitimer", racy_setitimer)
    outcome = scheduler_mod._guarded_execute(cell, 60.0)  # must not raise
    status, result = outcome[0], outcome[1]
    assert status == "ok"
    assert result == {"case": "fine", "policy": "linux-4kb"}
    assert fired["done"]  # the race window was actually exercised
    # timer fully disarmed and the previous handler restored
    assert real_setitimer(signal_mod.ITIMER_REAL, 0.0) == (0.0, 0.0)
    assert signal_mod.getsignal(signal_mod.SIGALRM) is before


def test_sweep_cache_and_force(tmp_path, failure_modes_experiment):
    cache = ResultCache(tmp_path)
    cells = [Cell("failure-modes", "fine", "linux-4kb")]
    first = run_sweep(cells, cache=cache)
    assert first.counts() == {"ok": 1}
    assert len(cache) == 1
    second = run_sweep(cells, cache=cache)
    assert second.counts() == {"cached": 1}
    assert second.executed == 0
    assert second.results() == first.results()
    forced = run_sweep(cells, cache=cache, force=True)
    assert forced.counts() == {"ok": 1}  # executed despite the cache


def test_sweep_updates_manifest(tmp_path, failure_modes_experiment):
    cache = ResultCache(tmp_path)
    manifest = Manifest(tmp_path / "manifest.json")
    cells = [Cell("failure-modes", c, "linux-4kb") for c in ("fine", "faulty")]
    run_sweep(cells, cache=cache, manifest=manifest, retries=0)
    loaded = Manifest.load(tmp_path / "manifest.json")
    assert loaded.summary() == {"ok": 1, "failed": 1}
    assert loaded.pending_cells() == [cells[1]]


@pytest.fixture
def staggered_experiment():
    def run(case, policy, scale):
        import time

        time.sleep({"slow": 0.8, "mid": 0.4, "fast": 0.0}[case])
        return {"case": case, "policy": policy}

    register("staggered", "completion-order test grid",
             cases=("slow", "mid", "fast"), policies=("linux-4kb",), run=run)
    yield
    unregister("staggered")


def test_pooled_outcomes_follow_cell_order(staggered_experiment):
    """Pooled execution completes out of submission order (slow first ⇒
    fast finishes first), but every downstream surface — progress
    callbacks, SweepReport.outcomes, the CSV/JSONL exports — must see
    cell order, byte-identical between jobs=1 and jobs=4."""
    from repro.metrics.export import cells_to_csv, cells_to_jsonl

    cells = [Cell("staggered", c, "linux-4kb")
             for c in ("slow", "mid", "fast")]
    settled: list[Cell] = []
    pooled = run_sweep(cells, jobs=4, retries=0,
                       progress=lambda o: settled.append(o.cell))
    serial = run_sweep(cells, jobs=1, retries=0)
    assert settled == cells
    assert [o.cell for o in pooled.outcomes] == cells
    assert [o.cell for o in serial.outcomes] == cells

    def normalized_records(report):
        records = []
        for outcome in report.outcomes:
            record = outcome.as_record()
            record["wall_s"] = 0.0  # the only legitimately varying field
            records.append(record)
        return records

    assert (cells_to_csv(normalized_records(serial))
            == cells_to_csv(normalized_records(pooled)))
    assert (cells_to_jsonl(normalized_records(serial))
            == cells_to_jsonl(normalized_records(pooled)))


def test_as_record_shape(failure_modes_experiment):
    report = run_sweep([Cell("failure-modes", "fine", "linux-4kb")])
    record = report.outcomes[0].as_record()
    assert record["cell_id"] == "failure-modes/fine:linux-4kb@128"
    assert record["experiment"] == "failure-modes"
    assert record["status"] == "ok"
    assert record["result"] == {"case": "fine", "policy": "linux-4kb"}


# --------------------------------------------------------------------- #
# determinism: serial vs pooled                                          #
# --------------------------------------------------------------------- #


def _strip_timing(envelope: dict) -> str:
    """Drop the wall-clock sections (timing block, telemetry self-profiles);
    everything else — results, scrapes, attribution — must be byte-identical."""
    stripped = {k: v for k, v in envelope.items() if k != "timing"}
    stripped["telemetry"] = [
        {k: v for k, v in artifact.items() if k != "self_profile"}
        for artifact in stripped.get("telemetry", [])
    ]
    return json.dumps(stripped, indent=2, sort_keys=True)


def test_smoke_cell_serial_vs_pooled_identical(tmp_path):
    """One cell run twice — in-process and on a 4-worker pool — must
    produce byte-identical cached envelopes modulo the timing block."""
    cell = Cell("smoke", "touch", "linux-4kb")
    serial_cache = ResultCache(tmp_path / "serial")
    pooled_cache = ResultCache(tmp_path / "pooled")
    serial = run_sweep([cell], jobs=1, cache=serial_cache)
    pooled = run_sweep([cell], jobs=4, cache=pooled_cache)
    assert serial.ok and pooled.ok
    key = serial.outcomes[0].key
    assert key == pooled.outcomes[0].key
    serial_env = serial_cache.get(key)
    pooled_env = pooled_cache.get(key)
    assert _strip_timing(serial_env) == _strip_timing(pooled_env)
    # and a third, direct in-process execution agrees with both
    assert execute_cell(cell) == serial_env["result"]


def test_numa_cell_serial_vs_pooled_identical(tmp_path):
    """The 2-node knumad balancing cell must be deterministic across
    workers too: hint-fault harvesting, candidate ordering and migration
    all run off sorted kernel state, never ambient interpreter state."""
    cell = Cell("numa", "balanced-2", "hawkeye-g")
    serial_cache = ResultCache(tmp_path / "serial")
    pooled_cache = ResultCache(tmp_path / "pooled")
    serial = run_sweep([cell], jobs=1, cache=serial_cache)
    pooled = run_sweep([cell], jobs=4, cache=pooled_cache)
    assert serial.ok and pooled.ok
    key = serial.outcomes[0].key
    assert key == pooled.outcomes[0].key
    serial_env = serial_cache.get(key)
    pooled_env = pooled_cache.get(key)
    assert _strip_timing(serial_env) == _strip_timing(pooled_env)
    result = serial_env["result"]
    # the cell did real balancing work (otherwise this proves nothing)
    assert result["pages_migrated"] > 0
    assert result["remote_walk_share"] < 0.5
    assert execute_cell(cell) == result
