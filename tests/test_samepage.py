"""Tests for native same-page merging (ksm) and the COW-share registry."""

import pytest

from repro.mem.samepage import CowShareRegistry, SamePageMerger
from repro.units import MB, PAGES_PER_HUGE
from tests.test_fault import make_proc


def touched_proc(kernel, npages=64, tag=None, name="p", first_nonzero=0):
    proc, vma = make_proc(kernel, nbytes=4 * MB)
    proc.name = name
    for i in range(npages):
        kernel.fault(proc, vma.start + i)
        frame, _ = proc.page_table.translate(vma.start + i)
        kernel.frames.write(frame, first_nonzero=first_nonzero, tag=tag)
    return proc, vma


def merger_for(kernel, rate=1e9):
    merger = SamePageMerger(kernel, pages_per_sec=rate)
    return merger


class TestMerging:
    def test_identical_pages_merge_across_processes(self, kernel4k):
        a, _ = touched_proc(kernel4k, tag=42, name="a")
        b, _ = touched_proc(kernel4k, tag=42, name="b")
        merger = merger_for(kernel4k)
        free_before = kernel4k.buddy.free_pages
        merged = 0
        for _ in range(3):  # candidate registration, then merging passes
            merged += merger.run_epoch()
        assert merged >= 63  # all but the canonical of each content page
        assert kernel4k.buddy.free_pages > free_before
        assert kernel4k.cow_registry.pages_saved() == merged

    def test_distinct_content_never_merges(self, kernel4k):
        touched_proc(kernel4k, tag=None, name="a")  # unique tags per page
        touched_proc(kernel4k, tag=None, name="b")
        merger = merger_for(kernel4k)
        for _ in range(3):
            assert merger.run_epoch() == 0

    def test_zero_pages_merge_onto_zero_frame(self, kernel4k):
        proc, vma = make_proc(kernel4k, nbytes=4 * MB)
        for i in range(32):
            kernel4k.fault(proc, vma.start + i)  # zero-filled, never written
        merger = merger_for(kernel4k)
        merged = merger.run_epoch()
        assert merged == 32
        assert proc.page_table.shared_zero_count == 32
        assert proc.rss_pages() == 0

    def test_rss_counts_merged_pages(self, kernel4k):
        a, _ = touched_proc(kernel4k, npages=16, tag=7, name="a")
        b, _ = touched_proc(kernel4k, npages=16, tag=7, name="b")
        for _ in range(3):
            merger_for(kernel4k).run_epoch()
        # ksm-shared pages stay in RSS (unlike zero-page dedup)
        assert a.rss_pages() == 16 and b.rss_pages() == 16

    def test_rate_limit(self, kernel4k):
        touched_proc(kernel4k, npages=64, tag=1, name="a")
        merger = SamePageMerger(kernel4k, pages_per_sec=10.0)
        merger.run_epoch()
        assert merger.bytes_compared <= 20 * 4096


class TestCowBreak:
    def test_write_after_merge_copies_out(self, kernel4k):
        a, vma_a = touched_proc(kernel4k, npages=8, tag=9, name="a")
        b, vma_b = touched_proc(kernel4k, npages=8, tag=9, name="b")
        merger = merger_for(kernel4k)
        for _ in range(3):
            merger.run_epoch()
        shared_pte = next(
            pte for pte in b.page_table.base.values() if pte.shared_cow
        )
        vpn = next(v for v, p in b.page_table.base.items() if p is shared_pte)
        latency = kernel4k.fault(b, vpn)
        assert latency == pytest.approx(kernel4k.costs.cow_fault_us)
        assert not shared_pte.shared_cow
        assert b.stats.cow_faults == 1
        # the content followed the copy
        assert kernel4k.frames.content_tag[shared_pte.frame] == 9

    def test_last_unshare_frees_canonical(self, kernel4k):
        a, vma_a = touched_proc(kernel4k, npages=4, tag=5, name="a")
        b, vma_b = touched_proc(kernel4k, npages=4, tag=5, name="b")
        merger = merger_for(kernel4k)
        for _ in range(3):
            merger.run_epoch()
        saved = kernel4k.cow_registry.pages_saved()
        assert saved > 0
        kernel4k.exit_process(a)
        kernel4k.exit_process(b)
        assert kernel4k.cow_registry.pages_saved() == 0
        assert kernel4k.cow_registry.refcount == {}
        # all frames back except the canonical zero frame
        assert kernel4k.frames.allocated_count() == 1

    def test_unshare_unknown_frame_raises(self, kernel4k):
        with pytest.raises(ValueError):
            kernel4k.cow_registry.unshare(12345)


class TestInteractions:
    def test_stale_registration_ignored_after_rewrite(self, kernel4k):
        a, vma_a = touched_proc(kernel4k, npages=1, tag=77, name="a")
        merger = merger_for(kernel4k)
        merger.run_epoch()  # registers the candidate
        frame, _ = a.page_table.translate(vma_a.start)
        kernel4k.frames.write(frame, first_nonzero=0, tag=88)  # content changed
        b, _ = touched_proc(kernel4k, npages=1, tag=77, name="b")
        merged = sum(merger.run_epoch() for _ in range(3))
        assert merged == 0, "stale candidate must not be merged with"

    def test_promotion_collapse_copies_shared_pages(self, kernel4k):
        a, vma_a = touched_proc(kernel4k, npages=PAGES_PER_HUGE, tag=3, name="a")
        b, vma_b = touched_proc(kernel4k, npages=PAGES_PER_HUGE, tag=3, name="b")
        merger = merger_for(kernel4k)
        for _ in range(4):
            merger.run_epoch()
        assert any(p.shared_cow for p in b.page_table.base.values())
        cost = kernel4k.promote_region(b, vma_b.start >> 9)
        assert cost is not None
        huge_pte = b.page_table.huge[vma_b.start >> 9]
        assert kernel4k.frames.content_tag[huge_pte.frame] == 3
        # a's mappings survived b's collapse
        assert a.page_table.is_mapped(vma_a.start)

    def test_compaction_skips_canonical_frames(self, kernel4k):
        a, _ = touched_proc(kernel4k, npages=8, tag=4, name="a")
        b, _ = touched_proc(kernel4k, npages=8, tag=4, name="b")
        merger = merger_for(kernel4k)
        for _ in range(3):
            merger.run_epoch()
        canonical = next(iter(kernel4k.cow_registry.refcount))
        assert kernel4k.frames.pinned[canonical]
        kernel4k.compactor.run(10_000)
        assert kernel4k.frames.allocated[canonical]
        assert kernel4k.frames.content_tag[canonical] == 4
