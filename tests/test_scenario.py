"""Scenario schema, executor, registration and CLI coverage.

The property test corrupts one field of a known-good document and
checks the loader rejects it with an error naming the corrupted path —
the schema's contract is that nothing fails far from its cause.
"""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.experiments import Scale
from repro.runner import cells_for
from repro.runner.cache import cell_key, source_digest
from repro.runner.registry import unregister
from repro.scenario import (
    ScenarioError,
    experiment_name,
    load_scenario,
    parse_scenario_text,
    register_scenario,
    run_scenario_case,
    scenario_digest,
    validate_scenario,
)

SCALE = Scale.from_denominator(1024)


def valid_doc() -> dict:
    """A compact document exercising every section of the schema."""
    return {
        "scenario": 1,
        "name": "unit",
        "title": "unit scenario",
        "policies": ["linux-2mb"],
        "machine": {"mem_gb": 24, "numa_nodes": 2},
        "cases": [
            {"name": "plain"},
            {"name": "balanced", "machine": {"numa_balance": True}},
        ],
        "phases": [
            {
                "name": "launch",
                "spawn": [{"workload": "alloc-touch-free", "name": "w0"}],
                "hog": {"gb": 0.5, "name": "hog0", "hold_s": 4},
                "run_s": 2,
            },
            {
                "name": "perturb",
                "kill": "w0",
                "restart": "hog0",
                "balloon": {"gb": 0.25},
                "node_pressure": {"node": 0, "gb": 0.1},
                "fragment": {"keep_fraction": 0.5},
                "run_s": 1,
            },
        ],
        "assertions": [
            {"kind": "bloat-ceiling", "max_mb": 1e9},
            {"kind": "fault-p99", "max_us": 1e9},
            {"kind": "fairness-spread", "max_ratio": 1e9, "metric": "faults"},
        ],
        "max_epochs": 60,
    }


def test_valid_doc_validates():
    scenario = validate_scenario(valid_doc())
    assert scenario.name == "unit"
    assert scenario.case_names() == ("plain", "balanced")
    assert len(scenario.phases) == 2
    assert scenario.phases[1].kill == ("w0",)
    assert scenario.digest == scenario_digest(valid_doc())


# Each corruption is (expected error path, mutator).  The expected path
# may be a prefix: some errors anchor on the container, some on the key.
CORRUPTIONS = [
    ("scenario.scenario", lambda d: d.update(scenario=2)),
    ("scenario.name", lambda d: d.update(name="Bad Name!")),
    ("scenario.policies[0]", lambda d: d["policies"].__setitem__(0, "linux-2mbb")),
    ("scenario.machine.mem_gb", lambda d: d["machine"].update(mem_gb="lots")),
    ("scenario.cases[1].name", lambda d: d["cases"][1].update(name="plain")),
    ("scenario.phases[0].spawn[0].workload",
     lambda d: d["phases"][0]["spawn"][0].update(workload="redsi")),
    ("scenario.phases[1].kill", lambda d: d["phases"][1].update(kill="nosuch")),
    ("scenario.phases[1].node_pressure.node",
     lambda d: d["phases"][1]["node_pressure"].update(node=7)),
    ("scenario.phases[0].run_s", lambda d: d["phases"][0].update(run_s=-1)),
    ("scenario.assertions[0]",
     lambda d: d["assertions"][0].pop("max_mb")),
    ("scenario.assertions[1].max_us",
     lambda d: d["assertions"][1].update(max_us="slow")),
    ("scenario.assertions[2].metric",
     lambda d: d["assertions"][2].update(metric="bogus")),
    ("scenario.max_epochs", lambda d: d.update(max_epochs=1)),
    ("scenario.phases[0].sawn",
     lambda d: d["phases"][0].update(sawn=[])),
    ("scenario", lambda d: d.pop("phases")),
    ("scenario.phases[1].balloon",
     lambda d: d["phases"][1].update(balloon={})),
    ("scenario.phases[0].hog.gb",
     lambda d: d["phases"][0]["hog"].update(gb=-2)),
    ("scenario.assertions[0].max_us",
     lambda d: d["assertions"][0].update(max_us=5)),
]


@settings(max_examples=40, deadline=None)
@given(pick=st.sampled_from(range(len(CORRUPTIONS))))
def test_single_field_corruption_names_the_bad_path(pick):
    expected_path, mutate = CORRUPTIONS[pick]
    document = copy.deepcopy(valid_doc())
    mutate(document)
    with pytest.raises(ScenarioError) as exc:
        validate_scenario(document)
    assert exc.value.path.startswith(expected_path), (
        f"corruption at {expected_path} reported at {exc.value.path}: "
        f"{exc.value.message}")


@settings(max_examples=30, deadline=None)
@given(key=st.from_regex(r"[a-z]{3,10}", fullmatch=True))
def test_unknown_top_level_key_is_named(key):
    document = valid_doc()
    if key in document:
        return
    document[key] = 1
    with pytest.raises(ScenarioError) as exc:
        validate_scenario(document)
    assert exc.value.path == f"scenario.{key}"
    assert "unknown key" in exc.value.message


def test_did_you_mean_suggestions():
    document = valid_doc()
    document["phases"][0]["spawn"][0]["workload"] = "alloc-touch-fre"
    with pytest.raises(ScenarioError, match="did you mean 'alloc-touch-free'"):
        validate_scenario(document)
    document = valid_doc()
    document["policies"][0] = "hawkeye"
    with pytest.raises(ScenarioError, match="did you mean"):
        validate_scenario(document)


def test_spawn_before_reference_enforced():
    document = valid_doc()
    # killing in phase 0 a process spawned in phase 1 must fail
    document["phases"][0]["kill"] = "hog0"
    del document["phases"][0]["hog"]
    document["phases"][1]["restart"] = []
    with pytest.raises(ScenarioError, match="not spawned in an earlier phase"):
        validate_scenario(document)


def test_yaml_and_json_parse_to_same_digest(tmp_path):
    document = valid_doc()
    as_json = json.dumps(document)
    parsed_json = parse_scenario_text(as_json)
    import yaml

    parsed_yaml = parse_scenario_text(yaml.safe_dump(document))
    assert scenario_digest(parsed_json) == scenario_digest(parsed_yaml)


def test_digest_ignores_key_order_and_whitespace():
    document = valid_doc()
    reordered = json.loads(json.dumps(document, sort_keys=True, indent=4))
    assert scenario_digest(document) == scenario_digest(reordered)
    changed = valid_doc()
    changed["phases"][0]["run_s"] = 3
    assert scenario_digest(document) != scenario_digest(changed)


# --------------------------------------------------------------------- #
# registration + cache-key round trip                                    #
# --------------------------------------------------------------------- #


@pytest.fixture
def registered():
    scenario = validate_scenario(valid_doc())
    exp = register_scenario(scenario)
    yield scenario, exp
    unregister(exp.name)


def test_register_scenario_grid(registered):
    scenario, exp = registered
    assert exp.name == experiment_name(scenario) == "scn-unit"
    assert exp.key_material == f"scenario:{scenario.digest}"
    cells = cells_for(exp.name, 1024)
    assert len(cells) == 2  # 2 cases x 1 policy
    assert {c.case for c in cells} == {"plain", "balanced"}


def test_cache_key_stable_across_loads_and_sensitive_to_edits(registered):
    scenario, exp = registered
    cell = cells_for(exp.name, 1024)[0]
    digest = source_digest()
    key = cell_key(cell, digest, exp.version, exp.key_material)
    # a second load of identical content produces the same key
    exp2 = register_scenario(validate_scenario(valid_doc()))
    assert cell_key(cell, digest, exp2.version, exp2.key_material) == key
    # a meaningful edit produces a different key
    changed = valid_doc()
    changed["phases"][0]["run_s"] = 3
    exp3 = register_scenario(validate_scenario(changed))
    assert cell_key(cell, digest, exp3.version, exp3.key_material) != key
    unregister(exp.name)


# --------------------------------------------------------------------- #
# executor                                                               #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def unit_result():
    scenario = validate_scenario(valid_doc())
    return scenario, run_scenario_case(scenario, "plain", "linux-2mb", SCALE)


def test_executor_result_shape(unit_result):
    scenario, result = unit_result
    assert result["scenario"] == "unit"
    assert result["case"] == "plain"
    assert result["policy"] == "linux-2mb"
    assert not result["oom"]
    assert result["epochs"] <= scenario.max_epochs
    assert set(result["processes"]) == {"w0", "hog0"}
    assert len(result["assertions"]) == 3
    json.dumps(result)  # must be JSON-able for the cache


def test_executor_kill_and_restart_bookkeeping(unit_result):
    _, result = unit_result
    w0 = result["processes"]["w0"]
    assert not w0["alive"]          # killed in phase 1
    assert w0["restarts"] == 0
    hog = result["processes"]["hog0"]
    assert hog["restarts"] == 1     # restarted in phase 1
    assert hog["workload"] == "memhog"
    assert hog["faults"] > 0        # restarted incarnation refaults


def test_executor_fault_p99_present(unit_result):
    _, result = unit_result
    # the fault-p99 assertion attaches the tracer, so p99 materialises
    assert result["fault_p99_us"] > 0
    kinds = {a["kind"]: a for a in result["assertions"]}
    assert kinds["fault-p99"]["passed"]
    assert kinds["bloat-ceiling"]["passed"]


def test_executor_is_deterministic(unit_result):
    scenario, result = unit_result
    again = run_scenario_case(scenario, "plain", "linux-2mb", SCALE)
    assert again == result


def test_failing_assertion_reported():
    document = valid_doc()
    document["assertions"] = [{"kind": "fault-p99", "max_us": 0}]
    scenario = validate_scenario(document)
    result = run_scenario_case(scenario, "plain", "linux-2mb", SCALE)
    assert not result["assertions_passed"]
    record = result["assertions"][0]
    assert not record["passed"]
    assert record["actual_us"] > 0 and record["limit_us"] == 0


def test_balloon_frames_released():
    document = valid_doc()
    document["phases"].append(
        {"name": "deflate", "balloon": {"release": True}, "run_s": 1})
    scenario = validate_scenario(document)
    result = run_scenario_case(scenario, "plain", "linux-2mb", SCALE)
    assert not result["oom"]


# --------------------------------------------------------------------- #
# CLI                                                                    #
# --------------------------------------------------------------------- #


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return path


def test_cli_validate_reports_path(tmp_path, capsys):
    bad = valid_doc()
    bad["phases"][0]["spawn"][0]["workload"] = "redsi"
    path = _write(tmp_path, "bad.json", bad)
    good = _write(tmp_path, "good.json", valid_doc())
    rc = cli.main(["scenario", "validate", str(good), str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "INVALID" in out
    assert "scenario.phases[0].spawn[0].workload" in out
    assert "ok" in out.splitlines()[0]


def test_cli_list(tmp_path, capsys):
    _write(tmp_path, "one.json", valid_doc())
    (tmp_path / "broken.yaml").write_text("scenario: 1\nname: [')\n")
    rc = cli.main(["scenario", "list", "--dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "one.json" in out and "unit" in out
    assert "INVALID" in out


def _fast_doc():
    document = valid_doc()
    document["name"] = "fast"
    document["cases"] = [{"name": "only"}]
    document["phases"] = [
        {"spawn": {"workload": "alloc-touch-free", "name": "w"}, "run_s": 1},
    ]
    document["assertions"] = [{"kind": "bloat-ceiling", "max_mb": 1e9}]
    document["max_epochs"] = 40
    return document


def test_cli_scenario_run_and_cache(tmp_path, capsys):
    path = _write(tmp_path, "fast.json", _fast_doc())
    cache = tmp_path / "cache"
    argv = ["scenario", "run", str(path), "--cache-dir", str(cache),
            "--scale", "1024"]
    try:
        rc = cli.main(argv)
        err = capsys.readouterr().err
        assert rc == 0
        assert "1 ok" in err
        # warm rerun must be a 100% cache hit
        rc = cli.main(argv + ["--require-cached"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "1 cached" in err
    finally:
        unregister("scn-fast")


def test_cli_scenario_run_fails_failed_assertions(tmp_path, capsys):
    document = _fast_doc()
    document["name"] = "fastfail"
    document["assertions"] = [{"kind": "fault-p99", "max_us": 0}]
    path = _write(tmp_path, "fail.json", document)
    try:
        rc = cli.main(["scenario", "run", str(path), "--cache-dir",
                       str(tmp_path / "cache"), "--scale", "1024"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "assertion failed" in err
        # the failure names the measured value and the broken limit
        assert "fault-p99: measured" in err
        assert "> limit 0.0 us" in err
    finally:
        unregister("scn-fastfail")


def test_format_assertion_failure_measured_vs_threshold():
    from repro.scenario.executor import format_assertion_failure

    assert format_assertion_failure(
        {"kind": "bloat-ceiling", "process": None, "actual_mb": 12.5,
         "limit_mb": 8, "passed": False}) \
        == "bloat-ceiling [total]: measured 12.5 MB > limit 8 MB"
    assert format_assertion_failure(
        {"kind": "bloat-ceiling", "process": "redis", "actual_mb": 3.25,
         "limit_mb": 2, "passed": False}) \
        == "bloat-ceiling [redis]: measured 3.25 MB > limit 2 MB"
    assert format_assertion_failure(
        {"kind": "fault-p99", "actual_us": 41.3, "limit_us": 10,
         "passed": False}) \
        == "fault-p99: measured 41.3 us > limit 10 us"
    assert format_assertion_failure(
        {"kind": "fault-p99", "actual_us": None, "limit_us": 10,
         "passed": False}) \
        == "fault-p99: no fault samples recorded (limit 10 us)"
    assert format_assertion_failure(
        {"kind": "fairness-spread", "metric": "rss_mb",
         "actual_ratio": 2.61, "limit_ratio": 1.5, "passed": False}) \
        == "fairness-spread[rss_mb]: measured ratio 2.61 > limit 1.5"
    # unknown kinds degrade to a key=value dump, never crash
    assert format_assertion_failure(
        {"kind": "future-check", "actual": 3, "passed": False}) \
        == "future-check: actual=3"


def test_cli_scenario_run_invalid_file(tmp_path, capsys):
    bad = valid_doc()
    bad.pop("policies")
    path = _write(tmp_path, "bad.json", bad)
    rc = cli.main(["scenario", "run", str(path), "--cache-dir",
                   str(tmp_path / "cache")])
    assert rc == 2
    assert "missing required key" in capsys.readouterr().err


def test_cli_sweep_run_scenario_flag(tmp_path, capsys):
    document = _fast_doc()
    document["name"] = "viasweep"
    path = _write(tmp_path, "via.json", document)
    try:
        rc = cli.main(["sweep", "run", "--scenario", str(path),
                       "--cache-dir", str(tmp_path / "cache"),
                       "--scale", "1024"])
        captured = capsys.readouterr()
        assert rc == 0
        # only the scenario's cells ran, not every registered experiment
        assert "scn-viasweep/only:linux-2mb@1024" in captured.out
        assert "tab1" not in captured.out
    finally:
        unregister("scn-viasweep")
