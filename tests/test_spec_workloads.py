"""Tests for the SPEC / CloudSuite presets."""

import pytest

from repro.experiments import Scale, make_kernel
from repro.tlb.mmu_model import MMUModel, RegionLoad
from repro.units import GB, SEC
from repro.workloads import spec
from repro.workloads.catalog import APPLICATIONS

SCALE = Scale(1 / 64)


def test_available_presets_all_build():
    for name in spec.available():
        wl = spec.make(name, scale=SCALE.factor)
        assert wl.name == name
        assert wl.build_phases()


def test_unknown_preset_rejected():
    with pytest.raises(KeyError):
        spec.make("gcc")  # catalogued but TLB-insensitive: no preset


def test_presets_are_paper_sensitive_apps():
    sensitive = {a.name for a in APPLICATIONS if a.paper_sensitive}
    assert set(spec.available()) <= sensitive | {"graph-analytics", "data-analytics"}


def test_mcf_is_tlb_sensitive_end_to_end():
    kernel = make_kernel(8 * GB, "linux-4kb", SCALE)
    run = kernel.spawn(spec.make("mcf", scale=SCALE.factor, work_us=300 * SEC))
    kernel.run_epochs(20)
    base_overhead = run.proc.mmu_overhead
    assert base_overhead > 0.1

    kernel2 = make_kernel(8 * GB, "linux-2mb", SCALE)
    run2 = kernel2.spawn(spec.make("mcf", scale=SCALE.factor, work_us=300 * SEC))
    kernel2.run_epochs(20)
    assert run2.proc.mmu_overhead < base_overhead / 3


def test_omnetpp_matches_fig10_sensitivity():
    wl = spec.make("omnetpp", scale=SCALE.factor)
    assert wl.profile.cache_sensitivity == 1.0


def test_class_shims():
    assert spec.Mcf(scale=SCALE.factor).name == "mcf"
    assert spec.Omnetpp(scale=SCALE.factor).name == "omnetpp"


def test_rates_consistent_with_catalog_classification():
    """Every preset must classify as sensitive through the model, the
    same check Table 2 runs over the whole catalog."""
    model = MMUModel()
    for name in spec.available():
        wl = spec.make(name, scale=SCALE.factor)
        spec_app = next(a for a in APPLICATIONS if a.name == name)
        load = RegionLoad(2000, 512.0, 0.0, 1.0, spec_app.pattern)
        overhead = model.epoch([load], access_rate=spec_app.access_rate).overhead
        assert 1.0 / (1.0 - overhead) - 1.0 > 0.03, name
