"""Unit tests for the swap device."""

import pytest

from repro.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.test_fault import make_proc


def make(mem_mb=8, swap_mb=32, policy=Linux4KPolicy):
    return Kernel(
        KernelConfig(mem_bytes=mem_mb * MB, swap_bytes=swap_mb * MB), policy
    )


def test_swap_extends_memory_past_ram():
    kernel = make()
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    for vpn in range(vma.start, vma.start + 3000):
        kernel.fault(proc, vpn)
    assert kernel.swap.swap_outs > 0
    assert kernel.stats.oom_kills == 0


def test_swapped_page_faults_back_with_io_cost():
    kernel = make()
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    for vpn in range(vma.start, vma.start + 3000):
        kernel.fault(proc, vpn)
    pid_vpn = next(iter(kernel.swap.swapped))
    assert pid_vpn[0] == proc.pid
    latency = kernel.fault(proc, pid_vpn[1])
    assert latency >= kernel.costs.swap_page_us
    assert not kernel.swap.is_swapped(*pid_vpn)
    assert kernel.swap.swap_ins == 1
    # the page's content returned from swap, not zero
    frame, _ = proc.page_table.translate(pid_vpn[1])
    assert not kernel.frames.is_zero(frame)


def test_victims_unmapped_fifo():
    kernel = make()
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    for vpn in range(vma.start, vma.start + 3000):
        kernel.fault(proc, vpn)
    # earliest-mapped pages are evicted first (FIFO)
    assert not proc.page_table.is_mapped(vma.start)
    assert proc.page_table.is_mapped(vma.start + 2999)


def test_huge_mappings_demoted_for_swap():
    kernel = make(mem_mb=8, policy=lambda k: LinuxTHPPolicy(k, khugepaged=False))
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    kernel.fault(proc, vma.start)  # huge fault: 512 pages
    kernel.fault(proc, vma.start + PAGES_PER_HUGE)  # another
    kernel.fault(proc, vma.start + 2 * PAGES_PER_HUGE)
    # now exhaust memory: swap must demote a huge page to find victims
    for vpn in range(vma.start + 3 * PAGES_PER_HUGE, vma.end):
        kernel.fault(proc, vpn)
    assert kernel.stats.demotions > 0
    assert kernel.swap.swap_outs > 0


def test_swap_capacity_limits_and_oom():
    kernel = make(mem_mb=4, swap_mb=1)
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    with pytest.raises(OutOfMemoryError):
        for vpn in range(vma.start, vma.end):
            kernel.fault(proc, vpn)
    assert len(kernel.swap.swapped) <= kernel.swap.capacity_pages


def test_io_time_accounted():
    kernel = make()
    proc, vma = make_proc(kernel, nbytes=16 * MB)
    for vpn in range(vma.start, vma.start + 3000):
        kernel.fault(proc, vpn)
    assert kernel.swap.io_time_us == pytest.approx(
        kernel.swap.swap_outs * kernel.costs.swap_page_us
    )
