"""Tests for the run-telemetry sampler and its artifact."""

from __future__ import annotations

import json

import pytest

from repro import trace
from repro.kernel.kernel import Kernel
from repro.metrics import telemetry
from repro.metrics.telemetry import RunTelemetry, TelemetrySampler
from repro.policies.linux import Linux4KPolicy
from tests.conftest import small_config, spawn_simple


def _run(kernel, epochs=12):
    spawn_simple(kernel, heap_mb=4, work_s=2.0)
    kernel.run_epochs(epochs)


# --------------------------------------------------------------------- #
# attachment lifecycle                                                   #
# --------------------------------------------------------------------- #


def test_attach_arms_flag_and_is_idempotent(kernel4k):
    assert telemetry.enabled is False
    sampler = telemetry.attach(kernel4k, every_epochs=2)
    assert telemetry.enabled is True
    assert telemetry.attach(kernel4k) is sampler
    assert telemetry.detach(kernel4k) is sampler
    assert telemetry.enabled is False
    assert telemetry.detach(kernel4k) is None


def test_epoch_hook_scrapes_on_schedule(kernel4k):
    sampler = telemetry.attach(kernel4k, every_epochs=3)
    _run(kernel4k, epochs=9)
    assert len(sampler.scrapes) == 3
    times = [s["t_s"] for s in sampler.scrapes]
    assert times == sorted(times)


def test_disabled_sampler_stays_silent(kernel4k):
    sampler = telemetry.attach(kernel4k)
    sampler.enabled = False
    _run(kernel4k, epochs=6)
    assert sampler.scrapes == []


def test_unattached_kernel_pays_nothing(kernel4k):
    _run(kernel4k, epochs=4)
    assert kernel4k.telemetry is None


def test_counters_monotonic_in_real_run(kernel_hawkeye):
    sampler = telemetry.attach(kernel_hawkeye)
    _run(kernel_hawkeye, epochs=20)
    scrapes = sampler.scrapes
    assert len(scrapes) >= 10
    for name, series in _counter_series(scrapes).items():
        assert all(lo <= hi for lo, hi in zip(series, series[1:])), name


def _counter_series(scrapes):
    out = {}
    for scrape in scrapes:
        for family, children in scrape["counters"].items():
            for key, value in children.items():
                out.setdefault(f"{family}{{{key}}}", []).append(value)
    return out


# --------------------------------------------------------------------- #
# the artifact                                                           #
# --------------------------------------------------------------------- #


def test_artifact_contents_and_round_trip(kernel_hawkeye):
    trace.attach(kernel_hawkeye)
    sampler = telemetry.attach(kernel_hawkeye, every_epochs=5)
    _run(kernel_hawkeye, epochs=15)
    artifact = sampler.telemetry({"cell_id": "x"})
    assert artifact.version == telemetry.TELEMETRY_VERSION
    assert artifact.meta["cell_id"] == "x"
    assert artifact.meta["policy"] == "HawkEyePolicy"
    assert "w" in artifact.meta["processes"]
    assert artifact.scrapes
    assert artifact.attribution["fault"]["events"] > 0
    assert any(h["count"] for h in artifact.histograms.values())
    assert artifact.self_profile["epochs"] == 15
    # scalar metrics are simulated-time only: no wall-clock keys
    scalars = artifact.scalar_metrics()
    assert "attribution.fault.events" in scalars
    assert any(k.startswith("hist.") and k.endswith(".p95") for k in scalars)
    assert not any("wall" in k for k in scalars)
    # artifact round-trips through JSON exactly
    blob = json.dumps(artifact.to_dict())
    rebuilt = RunTelemetry.from_dict(json.loads(blob))
    assert rebuilt.to_dict() == artifact.to_dict()
    assert rebuilt.scalar_metrics() == scalars
    trace.detach(kernel_hawkeye)


def test_short_run_still_gets_final_scrape(kernel4k):
    # the run finishes before the first every_epochs boundary...
    sampler = telemetry.attach(kernel4k, every_epochs=1000)
    _run(kernel4k, epochs=3)
    assert sampler.scrapes == []
    # ...but the artifact always ends with a final-state scrape
    artifact = sampler.telemetry()
    assert len(artifact.scrapes) == 1
    assert artifact.scrapes[-1]["t_s"] == kernel4k.now_us / 1e6


def test_artifact_without_tracer_has_empty_attribution(kernel4k):
    sampler = telemetry.attach(kernel4k)
    _run(kernel4k, epochs=4)
    artifact = sampler.telemetry()
    assert artifact.attribution == {}
    assert artifact.histograms == {}
    assert artifact.scalar_metrics() == {}


# --------------------------------------------------------------------- #
# sweep capture                                                          #
# --------------------------------------------------------------------- #


def test_capture_autoattaches_new_kernels():
    telemetry.start_capture(every_epochs=2)
    try:
        kernel = Kernel(small_config(), Linux4KPolicy)
        assert kernel.telemetry is not None
        assert kernel.trace is not None      # small, warn-free capture tracer
        assert kernel.trace.capacity == telemetry.CAPTURE_TRACE_CAPACITY
        _run(kernel, epochs=6)
    finally:
        artifacts = telemetry.end_capture({"cell_id": "cap"})
    assert len(artifacts) == 1
    assert artifacts[0].meta["cell_id"] == "cap"
    assert artifacts[0].scrapes
    assert telemetry.capturing is False
    assert kernel.telemetry is None
    assert kernel.trace is None
    # kernels built after end_capture are untouched
    after = Kernel(small_config(), Linux4KPolicy)
    assert after.telemetry is None


def test_reset_clears_capture_state(kernel4k):
    telemetry.start_capture()
    telemetry.attach(kernel4k)
    telemetry.reset()
    assert telemetry.enabled is False
    assert telemetry.capturing is False
    assert telemetry.end_capture() == []
