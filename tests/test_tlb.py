"""Unit tests for the TLB capacity model and walk-cost tables."""

import pytest

from repro.patterns import Pattern
from repro.tlb.tlb import TLBConfig
from repro.tlb.walk import (
    blended_walk_cycles,
    nested_walk_cycles,
    pattern_latency_factor,
    walk_cycles,
)


def test_haswell_defaults():
    """§4: L1 = 64×4K + 8×2M, L2 = 1024 shared."""
    tlb = TLBConfig()
    assert (tlb.l1_base, tlb.l1_huge, tlb.l2_shared) == (64, 8, 1024)


def test_no_misses_when_demand_fits():
    tlb = TLBConfig()
    miss_base, miss_huge = tlb.miss_fractions(100, 4)
    assert miss_base == 0.0
    assert miss_huge == 0.0


def test_miss_fraction_grows_with_demand():
    tlb = TLBConfig()
    m1, _ = tlb.miss_fractions(2000, 0)
    m2, _ = tlb.miss_fractions(20000, 0)
    assert 0 < m1 < m2 < 1


def test_l2_shared_competitively():
    tlb = TLBConfig()
    cap_base_alone, _ = tlb.capacities(5000, 0)
    cap_base_shared, cap_huge_shared = tlb.capacities(5000, 5000)
    assert cap_base_alone == pytest.approx(64 + 1024)
    assert cap_base_shared < cap_base_alone
    assert cap_huge_shared > 8


def test_zero_demand_has_zero_miss():
    tlb = TLBConfig()
    assert tlb.miss_fractions(0, 0) == (0.0, 0.0)


def test_reach():
    tlb = TLBConfig()
    assert tlb.base_reach_bytes() == (64 + 1024) * 4096
    assert tlb.huge_reach_bytes() == (8 + 1024) * 2 * 1024 * 1024


def test_huge_walks_far_cheaper_than_base():
    """The core huge-page premise: shorter walks, walk-cache friendly."""
    assert walk_cycles("2m") < walk_cycles("4k") / 10


def test_nested_walks_cost_more_than_native():
    for guest in ("4k", "2m"):
        for host in ("4k", "2m"):
            assert nested_walk_cycles(guest, host) > walk_cycles(guest)


def test_nested_best_case_is_2m_on_2m():
    costs = {k: v for k, v in
             ((k, nested_walk_cycles(*k)) for k in
              [("4k", "4k"), ("4k", "2m"), ("2m", "4k"), ("2m", "2m")])}
    assert min(costs, key=costs.get) == ("2m", "2m")
    assert max(costs, key=costs.get) == ("4k", "4k")


def test_pattern_factors_ordered():
    assert (
        pattern_latency_factor(Pattern.SEQUENTIAL)
        < pattern_latency_factor(Pattern.STRIDED)
        < pattern_latency_factor(Pattern.RANDOM)
        == 1.0
    )


def test_blended_walk_interpolates_host_fraction():
    native = blended_walk_cycles("4k", None)
    all_4k = blended_walk_cycles("4k", 0.0)
    all_2m = blended_walk_cycles("4k", 1.0)
    half = blended_walk_cycles("4k", 0.5)
    assert native == walk_cycles("4k")
    assert all_4k == nested_walk_cycles("4k", "4k")
    assert all_2m == nested_walk_cycles("4k", "2m")
    assert half == pytest.approx((all_4k + all_2m) / 2)


def test_blended_clamps_fraction():
    assert blended_walk_cycles("2m", 1.5) == nested_walk_cycles("2m", "2m")
    assert blended_walk_cycles("2m", -0.5) == nested_walk_cycles("2m", "4k")
