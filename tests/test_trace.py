"""Unit tests for the first-class tracepoint subsystem (repro.trace)."""

import pytest

from repro import trace
from repro.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


# --------------------------------------------------------------------- #
# attachment and the zero-cost flag                                      #
# --------------------------------------------------------------------- #


def test_attach_arms_flag_and_detach_disarms(kernel4k):
    assert trace.enabled is False
    tracer = trace.attach(kernel4k)
    assert trace.enabled is True
    assert kernel4k.trace is tracer
    assert trace.detach(kernel4k) is tracer
    assert trace.enabled is False
    assert kernel4k.trace is None


def test_attach_is_idempotent(kernel4k):
    tracer = trace.attach(kernel4k)
    assert trace.attach(kernel4k) is tracer


def test_flag_stays_armed_while_any_kernel_traced(kernel4k, kernel_thp):
    trace.attach(kernel4k)
    trace.attach(kernel_thp)
    trace.detach(kernel4k)
    assert trace.enabled is True
    trace.detach(kernel_thp)
    assert trace.enabled is False


def test_detach_without_tracer_is_noop(kernel4k):
    assert trace.detach(kernel4k) is None
    assert trace.enabled is False


def test_no_tracer_emits_nothing(kernel4k):
    proc, vma = make_proc(kernel4k)
    kernel4k.fault(proc, vma.start)
    assert kernel4k.trace is None  # and nothing crashed


def test_tracer_enabled_false_pauses_emission(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k)
    tracer.enabled = False
    kernel4k.fault(proc, vma.start)
    assert len(tracer.events) == 0 and not tracer.counts
    tracer.enabled = True
    kernel4k.fault(proc, vma.start + 1)
    assert tracer.counts[trace.TraceKind.FAULT_BASE] == 1


# --------------------------------------------------------------------- #
# emission sites                                                         #
# --------------------------------------------------------------------- #


def test_base_fault_event_carries_latency(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k)
    latency = kernel4k.fault(proc, vma.start)
    (event,) = tracer.events
    assert event.kind is trace.TraceKind.FAULT_BASE
    assert event.process == proc.name
    assert event.page == vma.start
    assert event.span_us == pytest.approx(latency)
    # repeat faults are free and silent
    kernel4k.fault(proc, vma.start)
    assert len(tracer.events) == 1


def test_huge_fault_and_madvise_events(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    tracer = trace.attach(kernel_thp)
    kernel_thp.fault(proc, vma.start)
    kernel_thp.madvise_free(proc, vma.start, 10)
    kinds = [e.kind for e in tracer.events]
    assert kinds == [trace.TraceKind.FAULT_HUGE, trace.TraceKind.DEMOTE,
                     trace.TraceKind.MADVISE_FREE]
    madvise = tracer.events[-1]
    assert madvise.detail == "pages=10"
    assert madvise.page == vma.start >> 9


def test_promotion_events_distinguish_inplace_and_collapse(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    tracer = trace.attach(kernel_thp)
    hvpn = vma.start >> 9
    kernel_thp.fault(proc, vma.start)          # huge fault
    kernel_thp.demote_region(proc, hvpn)       # frames stay contiguous
    assert kernel_thp.promote_region(proc, hvpn) is not None
    assert tracer.counts[trace.TraceKind.PROMOTE_INPLACE] == 1

    # Interleave two regions' base faults so neither is contiguous.
    kernel = Kernel(small_config(), Linux4KPolicy)
    proc2, vma2 = make_proc(kernel)
    tracer2 = trace.attach(kernel)
    for offset in range(PAGES_PER_HUGE):
        kernel.fault(proc2, vma2.start + offset)
        kernel.fault(proc2, vma2.start + PAGES_PER_HUGE + offset)
    assert kernel.promote_region(proc2, vma2.start >> 9) is not None
    assert tracer2.counts[trace.TraceKind.PROMOTE_COLLAPSE] == 1
    collapse = tracer2.of_kind(trace.TraceKind.PROMOTE_COLLAPSE)[0]
    assert collapse.span_us == pytest.approx(
        kernel.costs.promotion_collapse_us(PAGES_PER_HUGE))


def test_cow_break_emits_fault_cow(kernel_thp):
    proc, vma = make_proc(kernel_thp)
    hvpn = vma.start >> 9
    kernel_thp.fault(proc, vma.start)
    kernel_thp.demote_region(proc, hvpn)
    kernel_thp.dedup_zero_pages(proc, hvpn)  # all pages still zero: shared
    tracer = trace.attach(kernel_thp)
    kernel_thp.fault(proc, vma.start)        # write to shared-zero page
    (event,) = tracer.of_kind(trace.TraceKind.FAULT_COW)
    assert event.detail == "zero"
    assert event.span_us == pytest.approx(kernel_thp.costs.cow_fault_us)


def test_oom_event_emitted_before_raise():
    kernel = Kernel(KernelConfig(mem_bytes=4 * MB), Linux4KPolicy)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    tracer = trace.attach(kernel)
    with pytest.raises(OutOfMemoryError):
        for offset in range(vma.npages):
            kernel.fault(proc, vma.start + offset)
    (event,) = tracer.of_kind(trace.TraceKind.OOM)
    assert event.process == "kernel"
    assert "allocated=" in event.detail


def test_swap_events():
    kernel = Kernel(
        KernelConfig(mem_bytes=4 * MB, swap_bytes=4 * MB), Linux4KPolicy)
    proc, vma = make_proc(kernel, nbytes=8 * MB)
    tracer = trace.attach(kernel)
    for offset in range(1200):  # > 1024 resident pages: must swap out
        kernel.fault(proc, vma.start + offset)
    assert tracer.counts.get(trace.TraceKind.SWAP_OUT, 0) > 0
    swapped = next(iter(kernel.swap.swapped))[1]
    kernel.fault(proc, swapped)
    (swap_in,) = tracer.of_kind(trace.TraceKind.SWAP_IN)
    assert swap_in.page == swapped
    assert swap_in.span_us == pytest.approx(kernel.costs.swap_page_us)


def test_prezero_and_sampler_events():
    from repro.core.hawkeye import HawkEyePolicy

    # boot_zeroed=False leaves every free frame dirty: kzerod has work.
    kernel = Kernel(
        small_config(boot_zeroed=False),
        lambda k: HawkEyePolicy(
            k, variant="g", promote_per_sec=100.0, prezero_pages_per_sec=1e6
        ),
    )
    proc, vma = make_proc(kernel)
    tracer = trace.attach(kernel)
    kernel.fault(proc, vma.start)
    kernel.run_epochs(kernel.config.sample_period)
    prezero = tracer.of_kind(trace.TraceKind.PREZERO)
    assert prezero and prezero[0].process == "kzerod"
    assert prezero[0].span_us > 0
    sampler = tracer.of_kind(trace.TraceKind.KTHREAD_EPOCH)
    assert any(e.process == "ksampled" for e in sampler)


def test_ksm_merge_event(kernel4k):
    from repro.mem.samepage import SamePageMerger

    proc, vma = make_proc(kernel4k)
    kernel4k.fault(proc, vma.start)
    kernel4k.fault(proc, vma.start + 1)      # both pages still zero-filled
    tracer = trace.attach(kernel4k)
    merger = SamePageMerger(kernel4k, pages_per_sec=1e6)
    assert merger.run_epoch() > 0
    (event,) = tracer.of_kind(trace.TraceKind.KSM_MERGE)
    assert event.process == "ksmd"
    assert "merged=" in event.detail


def test_kcompactd_event():
    from repro.experiments import fragment

    kernel = Kernel(small_config(kcompactd_pages_per_sec=10_000.0), Linux4KPolicy)
    fragment(kernel)
    tracer = trace.attach(kernel)
    kernel.run_epoch()
    if kernel.fmfi() > kernel.KCOMPACTD_TARGET_FMFI:
        pytest.skip("fragmenter left FMFI above target; kcompactd still busy")
    compact = tracer.of_kind(trace.TraceKind.COMPACT)
    assert compact and compact[0].process == "kcompactd"


# --------------------------------------------------------------------- #
# ring buffer, counters, attribution                                     #
# --------------------------------------------------------------------- #


def test_ring_buffer_drops_new_events_and_warns_once(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k, capacity=3)
    with pytest.warns(RuntimeWarning, match="ring buffer full"):
        for offset in range(8):
            kernel4k.fault(proc, vma.start + offset)
    assert len(tracer.events) == 3
    assert tracer.dropped == 5
    # counters and attribution stay exact despite the drops
    assert tracer.counts[trace.TraceKind.FAULT_BASE] == 8
    events, span = tracer.attribution()["fault"]
    assert events == 8
    assert span == pytest.approx(8 * tracer.events[0].span_us)


def test_consumers_see_dropped_events(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k, capacity=1)
    seen = []
    tracer.subscribe(seen.append)
    with pytest.warns(RuntimeWarning):
        for offset in range(3):
            kernel4k.fault(proc, vma.start + offset)
    assert len(seen) == 3  # subscription is lossless


def test_queries_and_filters(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k)
    for offset in range(4):
        kernel4k.fault(proc, vma.start + offset)
    kernel4k.madvise_free(proc, vma.start, 2)
    assert len(tracer.for_process(proc.name)) == 5
    assert len(tracer.of_kind(trace.TraceKind.FAULT_BASE)) == 4
    # kind filters accept subsystems and full names
    assert len(tracer.filter(kinds=["fault"])) == 4
    assert len(tracer.filter(kinds=["madvise.free"])) == 1
    assert len(tracer.filter(kinds=["fault", "madvise"])) == 5
    assert tracer.filter(process="nobody") == []
    # the half-open time window [since, until)
    assert len(tracer.filter(since=0.0, until=1.0)) == 5
    assert tracer.filter(since=1.0) == []


def test_stream_attribution_matches_exact(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k)
    for offset in range(3):
        kernel4k.fault(proc, vma.start + offset)
    assert trace.attribution(tracer.events) == tracer.attribution()


def test_format_attribution_orders_by_span():
    table = {"fault": (10, 1000.0), "promote": (1, 9000.0)}
    text = trace.format_attribution(table)
    lines = text.splitlines()
    assert "subsystem" in lines[1]
    assert lines[3].startswith("promote")  # larger span first
    assert "90.0" in lines[3]


# --------------------------------------------------------------------- #
# latency histograms                                                     #
# --------------------------------------------------------------------- #


def test_histogram_log2_buckets():
    hist = trace.LatencyHistogram()
    for sample in (0.3, 1.0, 1.5, 3.0, 1024.0, 0.0):
        hist.add(sample)
    assert hist.buckets[trace.LatencyHistogram.ZERO_BUCKET] == 1
    assert hist.buckets[-2] == 1   # 0.3 in [0.25, 0.5)
    assert hist.buckets[0] == 2    # 1.0, 1.5 in [1, 2)
    assert hist.buckets[1] == 1    # 3.0 in [2, 4)
    assert hist.buckets[10] == 1   # 1024 in [1024, 2048)
    assert hist.count == 6
    assert hist.min_us == 0.0 and hist.max_us == 1024.0
    assert hist.mean_us == pytest.approx(sum((0.3, 1.0, 1.5, 3.0, 1024.0)) / 6)
    assert trace.LatencyHistogram.bucket_bounds(1) == (2.0, 4.0)


def test_histogram_populated_per_kind(kernel4k):
    proc, vma = make_proc(kernel4k)
    tracer = trace.attach(kernel4k)
    for offset in range(5):
        kernel4k.fault(proc, vma.start + offset)
    hist = tracer.histograms[trace.TraceKind.FAULT_BASE]
    assert hist.count == 5
    text = trace.format_histogram(hist, "fault.base")
    assert "5 samples" in text and "#" in text


def test_format_histogram_empty():
    hist = trace.LatencyHistogram()
    assert "0 samples" in trace.format_histogram(hist, "x")


# --------------------------------------------------------------------- #
# event metadata                                                         #
# --------------------------------------------------------------------- #


def test_trace_kind_subsystem_prefixes():
    assert trace.TraceKind.FAULT_BASE.subsystem == "fault"
    assert trace.TraceKind.DEMOTE.subsystem == "demote"
    assert trace.TraceKind.PROMOTE_COLLAPSE.subsystem == "promote"
    # every kind has a non-empty dotted-or-plain lowercase name
    for kind in trace.TraceKind:
        assert kind.value and kind.value == kind.value.lower()
        assert kind.subsystem == kind.value.split(".", 1)[0]


def test_event_timestamp_in_seconds(kernel4k):
    proc, vma = make_proc(kernel4k)
    kernel4k.now_us = 2_500_000.0
    tracer = trace.attach(kernel4k)
    kernel4k.fault(proc, vma.start)
    assert tracer.events[0].t_seconds == pytest.approx(2.5)
