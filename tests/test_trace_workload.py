"""Tests for trace-driven workloads."""

import pytest

from repro.errors import ConfigError
from repro.units import MB, PAGES_PER_HUGE, SEC
from repro.workloads.trace import TraceWorkload, parse_size, parse_time


class TestParsing:
    def test_parse_size(self):
        assert parse_size("4096") == 4096
        assert parse_size("4KB") == 4096
        assert parse_size("2MB") == 2 * MB
        assert parse_size("1.5GB") == int(1.5 * 1024 * MB)

    def test_parse_time(self):
        assert parse_time("25s") == 25 * SEC
        assert parse_time("10ms") == 10_000
        assert parse_time("7us") == 7.0
        assert parse_time("3") == 3.0

    def test_comments_and_blanks_ignored(self):
        wl = TraceWorkload.parse("""
            # a comment
            mmap heap 4MB

            touch heap   # trailing comment
        """)
        assert len(wl.build_phases()) == 1

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ConfigError, match="line 2"):
            TraceWorkload.parse("mmap heap 4MB\nfrobnicate x\n")

    def test_unknown_kwarg_format(self):
        with pytest.raises(ConfigError):
            TraceWorkload.parse("touch heap 0 10 ratefast\n")


class TestExecution:
    def run_trace(self, kernel, text, max_epochs=200, scale=1.0):
        run = kernel.spawn(TraceWorkload.parse(text, scale=scale))
        kernel.run(max_epochs=max_epochs)
        assert run.finished
        return run

    def test_mmap_touch_free(self, kernel4k):
        run = self.run_trace(kernel4k, """
            mmap heap 4MB
            touch heap
            free heap 0 512
        """)
        assert run.proc.rss_pages() == 512

    def test_sparse_free(self, kernel4k):
        run = self.run_trace(kernel4k, """
            mmap heap 4MB
            touch heap
            free heap sparse=0.5
        """)
        assert run.proc.rss_pages() == pytest.approx(512, rel=0.2)

    def test_advise_nohugepage(self, kernel_thp):
        run = self.run_trace(kernel_thp, """
            mmap heap 4MB
            advise heap nohugepage
            touch heap
        """)
        assert run.proc.stats.huge_faults == 0

    def test_advise_hugepage_under_4k_policy(self, kernel4k):
        run = self.run_trace(kernel4k, """
            mmap heap 4MB
            advise heap hugepage
            touch heap
        """)
        assert run.proc.stats.huge_faults == 2

    def test_compute_with_profile(self, kernel4k):
        run = self.run_trace(kernel4k, """
            mmap heap 16MB
            touch heap
            compute 10s region=heap coverage=512 access_rate=30
        """, max_epochs=60)
        assert run.proc.mmu_overhead > 0.2
        assert run.elapsed_us > 12 * SEC  # overhead stretched the compute

    def test_serve_phase(self, kernel4k):
        run = self.run_trace(kernel4k, """
            serve 5s rate=1000 cost=10
        """)
        served = sum(run.served.values())
        assert served == pytest.approx(5000, rel=0.05)

    def test_scale_applied_to_sizes(self, kernel4k):
        run = self.run_trace(kernel4k, """
            mmap heap 8MB
            touch heap
        """, scale=0.5)
        assert run.proc.rss_pages() == 1024

    def test_respawn_gets_fresh_op_state(self, kernel4k):
        wl = TraceWorkload.parse("mmap h 1MB\ntouch h\n")
        r1 = kernel4k.spawn(wl)
        kernel4k.run(max_epochs=20)
        r2 = kernel4k.spawn(wl)
        kernel4k.run(max_epochs=20)
        assert r1.finished and r2.finished
        assert r2.proc.rss_pages() == 256

    def test_from_file(self, kernel4k, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("mmap heap 2MB\ntouch heap\n")
        wl = TraceWorkload.from_file(path)
        run = kernel4k.spawn(wl)
        kernel4k.run(max_epochs=20)
        assert run.finished
        assert run.proc.rss_pages() == 512
