"""Unit tests for repro.units address/size helpers."""

import pytest

from repro import units


def test_page_constants():
    assert units.BASE_PAGE_SIZE == 4096
    assert units.PAGES_PER_HUGE == 512
    assert units.HUGE_PAGE_SIZE == 2 * units.MB


def test_pages_of_rounds_up():
    assert units.pages_of(1) == 1
    assert units.pages_of(4096) == 1
    assert units.pages_of(4097) == 2
    assert units.pages_of(units.GB) == 262144


def test_huge_pages_of():
    assert units.huge_pages_of(1) == 1
    assert units.huge_pages_of(units.HUGE_PAGE_SIZE) == 1
    assert units.huge_pages_of(units.HUGE_PAGE_SIZE + 1) == 2


def test_huge_alignment_helpers():
    assert units.huge_align_down(0) == 0
    assert units.huge_align_down(511) == 0
    assert units.huge_align_down(512) == 512
    assert units.huge_align_up(1) == 512
    assert units.huge_align_up(512) == 512
    assert units.is_huge_aligned(1024)
    assert not units.is_huge_aligned(1023)


@pytest.mark.parametrize(
    "nbytes,expect",
    [(512, "512B"), (2048, "2.0KB"), (3 * units.MB, "3.0MB"), (5 * units.GB, "5.0GB")],
)
def test_bytes_human(nbytes, expect):
    assert units.bytes_human(nbytes) == expect
