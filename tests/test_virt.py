"""Unit tests for the virtualisation layer."""

import pytest

from repro.experiments import Scale, make_hypervisor, make_vm
from repro.units import GB, MB, PAGES_PER_HUGE, SEC
from repro.virt.balloon import BalloonDriver
from repro.virt.ksm import KSMThread
from repro.workloads.base import ContentSpec, FreeOp, MmapOp, Phase, TouchOp, Workload


SCALE = Scale(1 / 256)  # small for unit tests: 96 GB -> 384 MB


class GuestAllocator(Workload):
    name = "guest-alloc"

    def __init__(self, nbytes, zero=False, free_after=False):
        self.nbytes = nbytes
        self.zero = zero
        self.free_after = free_after

    def build_phases(self):
        ops = [MmapOp("heap", self.nbytes),
               TouchOp("heap", content=ContentSpec(zero=self.zero, first_nonzero=0))]
        if self.free_after:
            ops.append(FreeOp("heap"))
        return [Phase("alloc", ops=ops), Phase("hold", duration_us=600 * SEC)]


def setup(host_policy="linux-2mb", guest_policy="linux-2mb", vm_gb=16):
    hyp = make_hypervisor(96 * GB, host_policy, SCALE)
    vm = make_vm(hyp, "vm1", vm_gb * GB, guest_policy, SCALE)
    return hyp, vm


def test_guest_allocation_backs_host_pages():
    hyp, vm = setup()
    run = vm.spawn(GuestAllocator(SCALE.bytes(4 * GB)))
    hyp.run_epoch()
    host_rss = vm.host_proc.rss_pages()
    guest_rss = run.proc.rss_pages()
    assert guest_rss == SCALE.bytes(4 * GB) // 4096
    assert host_rss >= guest_rss


def test_backing_fault_cost_charged_to_guest():
    hyp, vm = setup()
    run = vm.spawn(GuestAllocator(SCALE.bytes(1 * GB)))
    hyp.run_epoch()
    # guest fault time includes host (sync-zeroing) backing faults
    assert run.proc.stats.fault_time_us > 0
    assert vm.host_proc.stats.faults > 0


def test_host_huge_fraction_updates():
    hyp, vm = setup(host_policy="linux-2mb")
    vm.spawn(GuestAllocator(SCALE.bytes(8 * GB)))
    hyp.run_epoch()
    hyp.run_epoch()
    assert vm._host_huge_fraction > 0.9  # host THP maps guest RAM huge


def test_nested_overhead_reported_to_host_pmu():
    hyp, vm = setup(vm_gb=32)  # cg.D needs 16 GB (scaled) of guest RAM
    from repro.workloads.npb import NPBWorkload

    run = vm.spawn(NPBWorkload("cg.D", scale=SCALE.factor, work_us=50 * SEC))
    for _ in range(5):
        hyp.run_epoch()
    host_pmu = hyp.host.pmu[vm.host_proc.pid]
    assert host_pmu.cpu_clk_unhalted > 0


class TestKSM:
    def test_merges_guest_zero_pages(self):
        hyp, vm = setup()
        ksm = hyp.enable_ksm(pages_per_sec=1e9)
        vm.spawn(GuestAllocator(SCALE.bytes(4 * GB), zero=True))
        for _ in range(3):
            hyp.run_epoch()
        assert ksm.merged_pages > 0
        assert hyp.host.zero_registry.mappings == ksm.merged_pages

    def test_spares_guest_data_pages(self):
        hyp, vm = setup()
        ksm = hyp.enable_ksm(pages_per_sec=1e9)
        vm.spawn(GuestAllocator(SCALE.bytes(4 * GB), zero=False))
        for _ in range(3):
            hyp.run_epoch()
        assert ksm.merged_pages == 0

    def test_guest_free_plus_prezero_returns_memory(self):
        """The paper's transparent ballooning channel: guest frees ->
        guest pre-zero -> host KSM merge -> host frames recovered."""
        hyp, vm = setup(guest_policy="hawkeye-g")
        ksm = hyp.enable_ksm(pages_per_sec=1e9)
        # crank the guest pre-zero thread for the test
        vm.guest.policy.prezero._limiter.per_second = 1e9
        run = vm.spawn(GuestAllocator(SCALE.bytes(4 * GB), zero=False, free_after=True))
        host_free_before = hyp.host.buddy.free_pages
        for _ in range(6):
            hyp.run_epoch()
        assert ksm.merged_pages > 0
        assert hyp.host.buddy.free_pages > host_free_before - 100

    def test_realloc_after_merge_cow_faults(self):
        hyp, vm = setup(guest_policy="hawkeye-g")
        hyp.enable_ksm(pages_per_sec=1e9)
        vm.guest.policy.prezero._limiter.per_second = 1e9
        vm.spawn(GuestAllocator(SCALE.bytes(2 * GB), free_after=True))
        for _ in range(6):
            hyp.run_epoch()
        merged = hyp.host.zero_registry.mappings
        assert merged > 0
        # guest reallocates: backing hook must COW-break merged pages
        vm.spawn(GuestAllocator(SCALE.bytes(2 * GB)))
        for _ in range(3):
            hyp.run_epoch()
        assert hyp.host.zero_registry.cow_faults > 0


class TestBalloon:
    def test_returns_free_guest_memory(self):
        hyp, vm = setup()
        run = vm.spawn(GuestAllocator(SCALE.bytes(4 * GB), free_after=True))
        hyp.run_epoch()  # allocate + free inside the guest
        host_rss_before = vm.host_proc.rss_pages()
        hyp.enable_ballooning(pages_per_sec=1e9)
        hyp.run_epoch()
        assert hyp.balloons[0].returned_pages > 0
        assert vm.host_proc.rss_pages() < host_rss_before

    def test_ballooned_pages_refault_on_reuse(self):
        hyp, vm = setup()
        vm.spawn(GuestAllocator(SCALE.bytes(2 * GB), free_after=True))
        hyp.run_epoch()
        hyp.enable_ballooning(pages_per_sec=1e9)
        hyp.run_epoch()
        returned = hyp.balloons[0].returned_pages
        assert returned > 0
        host_faults_before = hyp.host.stats.faults
        vm.spawn(GuestAllocator(SCALE.bytes(2 * GB)))
        hyp.run_epoch()
        assert hyp.host.stats.faults > host_faults_before


def test_swap_pressure_slows_guest():
    hyp, vm = setup()
    hyp.host.swap = __import__("repro.kernel.swap", fromlist=["SwapDevice"]).SwapDevice(
        hyp.host, capacity_pages=100_000
    )
    hyp.host.swap.swapped = {(vm.host_proc.pid, v) for v in range(1000)}
    vm.refresh()
    assert vm.guest.external_slowdown > 0
