"""Focused tests for the guest-zero KSM thread's mechanics."""

import pytest

from repro.experiments import Scale, make_hypervisor, make_vm
from repro.units import GB, PAGES_PER_HUGE, SEC
from repro.workloads.base import ContentSpec, MmapOp, Phase, TouchOp, Workload

SCALE = Scale(1 / 256)


class HalfZeroGuest(Workload):
    """Guest whose heap alternates written and never-written pages."""

    name = "half-zero"

    def __init__(self, nbytes):
        self.nbytes = nbytes

    def build_phases(self):
        return [
            Phase("alloc", ops=[
                MmapOp("heap", self.nbytes),
                TouchOp("heap", stride_pages=2,
                        content=ContentSpec(first_nonzero=0)),
            ]),
            Phase("hold", duration_us=600 * SEC),
        ]


def setup(guest_policy="linux-2mb"):
    hyp = make_hypervisor(32 * GB, "linux-2mb", SCALE)
    vm = make_vm(hyp, "v", 8 * GB, guest_policy, SCALE)
    ksm = hyp.enable_ksm(pages_per_sec=1e9)
    return hyp, vm, ksm


def test_guest_zero_mask_reads_guest_truth():
    hyp, vm, _ = setup()
    run = vm.spawn(HalfZeroGuest(SCALE.bytes(2 * GB)))
    hyp.run_epoch()
    base_hvpn = vm.ram_vma.start >> 9
    nregions = vm.ram_pages // PAGES_PER_HUGE
    # guest touched every other page of its heap: the heap's backing
    # regions must show up half-zero through the guest-truth mask
    half_zero = [
        h for h in range(base_hvpn, base_hvpn + nregions)
        if abs(int(vm.guest_zero_mask(h).sum()) - PAGES_PER_HUGE // 2) <= 2
    ]
    heap_regions = SCALE.bytes(2 * GB) // (PAGES_PER_HUGE * 4096)
    assert len(half_zero) == heap_regions


def test_half_zero_host_pages_demote_and_merge():
    hyp, vm, ksm = setup()
    vm.spawn(HalfZeroGuest(SCALE.bytes(2 * GB)))
    for _ in range(3):
        hyp.run_epoch()
    # DEMOTE_ZERO_FRACTION is 0.5: half-zero regions qualify
    assert ksm.merged_pages > 0
    assert hyp.host.stats.demotions > 0
    # merged backing leaves the host page shared-zero
    assert vm.host_proc.page_table.shared_zero_count == ksm.merged_pages


def test_ksm_scan_cursor_rotates():
    hyp, vm, ksm = setup()
    vm.spawn(HalfZeroGuest(SCALE.bytes(2 * GB)))
    hyp.run_epoch()
    first = ksm._cursor.get(vm.name, 0)
    hyp.run_epoch()
    second = ksm._cursor.get(vm.name, 0)
    nregions = vm.ram_pages // PAGES_PER_HUGE
    assert 0 <= first < nregions and 0 <= second < nregions


def test_rate_limited_ksm_partial_progress():
    hyp = make_hypervisor(32 * GB, "linux-2mb", SCALE)
    vm = make_vm(hyp, "v", 8 * GB, "linux-2mb", SCALE)
    ksm = hyp.enable_ksm(pages_per_sec=PAGES_PER_HUGE * 1.0)  # 1 region/epoch
    vm.spawn(HalfZeroGuest(SCALE.bytes(2 * GB)))
    # 16 backing regions at ~1-2 regions/epoch: the cursor needs several
    # epochs to reach the heap's regions
    for _ in range(24):
        hyp.run_epoch()
    assert ksm.merged_pages > 0, "rate-limited scan reaches the data eventually"
