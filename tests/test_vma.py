"""Unit tests for VMAs and the VMA list."""

import pytest

from repro.errors import InvalidAddressError
from repro.vm.vma import VMA, VMAKind, VMAList


def test_vma_geometry():
    vma = VMA(start=512, npages=1024, name="heap")
    assert vma.end == 1536
    assert vma.contains(512) and vma.contains(1535)
    assert not vma.contains(1536) and not vma.contains(511)
    assert vma.covers(512, 512)
    assert not vma.covers(1024, 1024)


def test_add_and_find():
    vmas = VMAList()
    a = vmas.add(VMA(0, 100, "a"))
    b = vmas.add(VMA(200, 100, "b"))
    assert vmas.find(50) is a
    assert vmas.find(250) is b
    assert len(vmas) == 2
    assert [v.name for v in vmas] == ["a", "b"]


def test_find_in_gap_raises():
    vmas = VMAList()
    vmas.add(VMA(0, 100, "a"))
    with pytest.raises(InvalidAddressError):
        vmas.find(150)
    assert vmas.try_find(150) is None


def test_overlap_rejected():
    vmas = VMAList()
    vmas.add(VMA(100, 100, "a"))
    with pytest.raises(InvalidAddressError):
        vmas.add(VMA(150, 100, "b"))
    with pytest.raises(InvalidAddressError):
        vmas.add(VMA(50, 60, "c"))


def test_insert_out_of_order_keeps_sorted():
    vmas = VMAList()
    vmas.add(VMA(1000, 10, "c"))
    vmas.add(VMA(0, 10, "a"))
    vmas.add(VMA(500, 10, "b"))
    assert [v.name for v in vmas] == ["a", "b", "c"]
    assert vmas.highest_end() == 1010


def test_remove():
    vmas = VMAList()
    a = vmas.add(VMA(0, 10, "a"))
    vmas.remove(a)
    assert len(vmas) == 0
    with pytest.raises(InvalidAddressError):
        vmas.remove(a)


def test_default_kind_is_anonymous():
    assert VMA(0, 1).kind is VMAKind.ANON
