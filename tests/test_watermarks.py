"""Unit tests for the bloat-recovery watermarks (§3.2 hysteresis)."""

import pytest

from repro.errors import ConfigError
from repro.mem.watermarks import Watermarks


def test_paper_defaults():
    wm = Watermarks()
    assert wm.high == 0.85
    assert wm.low == 0.70


def test_invalid_ordering_rejected():
    with pytest.raises(ConfigError):
        Watermarks(high=0.5, low=0.7)
    with pytest.raises(ConfigError):
        Watermarks(high=1.5, low=0.7)
    with pytest.raises(ConfigError):
        Watermarks(high=0.8, low=0.0)


def test_activates_above_high():
    wm = Watermarks()
    assert not wm.update(0.5)
    assert not wm.update(0.84)
    assert wm.update(0.85)
    assert wm.active


def test_hysteresis_keeps_running_until_low():
    """Recovery must continue below high until the low watermark."""
    wm = Watermarks()
    wm.update(0.9)
    assert wm.update(0.80), "still active between watermarks"
    assert wm.update(0.71), "still active just above low"
    assert not wm.update(0.69), "deactivates below low"
    assert not wm.update(0.80), "stays off until high is crossed again"
    assert wm.update(0.86)


class TestDynamicWatermarks:
    def make(self):
        from repro.mem.watermarks import DynamicWatermarks

        return DynamicWatermarks(high=0.85, low=0.70)

    def test_steady_load_keeps_static_thresholds(self):
        wm = self.make()
        for _ in range(40):
            wm.update(0.5)
        assert wm.high == pytest.approx(0.85, abs=0.01)
        assert wm.low == pytest.approx(0.70, abs=0.01)

    def test_volatile_load_widens_margin(self):
        wm = self.make()
        for i in range(40):
            wm.update(0.55 + 0.25 * (i % 2))  # oscillating 0.55/0.80
        assert wm.high < 0.85, "volatile load must lower the trigger"
        assert wm.low < 0.70

    def test_still_activates_and_deactivates(self):
        wm = self.make()
        for _ in range(10):
            wm.update(0.5)
        assert wm.update(0.9)
        assert not wm.update(0.1)

    def test_margin_capped(self):
        wm = self.make()
        for i in range(40):
            wm.update(1.0 if i % 2 else 0.0)  # pathological volatility
        assert wm.high >= wm._base_low + 0.02
        assert wm.low >= 0.01
