"""Unit tests for the bloat-recovery watermarks (§3.2 hysteresis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.watermarks import Watermarks


def test_paper_defaults():
    wm = Watermarks()
    assert wm.high == 0.85
    assert wm.low == 0.70


def test_invalid_ordering_rejected():
    with pytest.raises(ConfigError):
        Watermarks(high=0.5, low=0.7)
    with pytest.raises(ConfigError):
        Watermarks(high=1.5, low=0.7)
    with pytest.raises(ConfigError):
        Watermarks(high=0.8, low=0.0)


def test_activates_above_high():
    wm = Watermarks()
    assert not wm.update(0.5)
    assert not wm.update(0.84)
    assert wm.update(0.85)
    assert wm.active


def test_hysteresis_keeps_running_until_low():
    """Recovery must continue below high until the low watermark."""
    wm = Watermarks()
    wm.update(0.9)
    assert wm.update(0.80), "still active between watermarks"
    assert wm.update(0.71), "still active just above low"
    assert not wm.update(0.69), "deactivates below low"
    assert not wm.update(0.80), "stays off until high is crossed again"
    assert wm.update(0.86)


class TestDynamicWatermarks:
    def make(self):
        from repro.mem.watermarks import DynamicWatermarks

        return DynamicWatermarks(high=0.85, low=0.70)

    def test_steady_load_keeps_static_thresholds(self):
        wm = self.make()
        for _ in range(40):
            wm.update(0.5)
        assert wm.high == pytest.approx(0.85, abs=0.01)
        assert wm.low == pytest.approx(0.70, abs=0.01)

    def test_volatile_load_widens_margin(self):
        wm = self.make()
        for i in range(40):
            wm.update(0.55 + 0.25 * (i % 2))  # oscillating 0.55/0.80
        assert wm.high < 0.85, "volatile load must lower the trigger"
        assert wm.low < 0.70

    def test_still_activates_and_deactivates(self):
        wm = self.make()
        for _ in range(10):
            wm.update(0.5)
        assert wm.update(0.9)
        assert not wm.update(0.1)

    def test_margin_capped(self):
        wm = self.make()
        for i in range(40):
            wm.update(1.0 if i % 2 else 0.0)  # pathological volatility
        assert wm.high >= wm._base_low + 0.02
        assert wm.low >= 0.01


class TestDynamicWatermarkProperties:
    """Hypothesis properties: no single-sample flap under any burst
    pattern, and exact convergence to the static 85/70 thresholds once
    volatility dies out."""

    def make(self):
        from repro.mem.watermarks import DynamicWatermarks

        return DynamicWatermarks(high=0.85, low=0.70)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=120))
    def test_thresholds_stay_ordered_and_bounded(self, samples):
        wm = self.make()
        for sample in samples:
            wm.update(sample)
            assert 0.0 < wm.low < wm.high <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=120))
    def test_never_flaps_within_one_sample(self, samples):
        """One sample changes the active state at most once, and only by
        crossing the threshold that was in force for it: activation
        requires sample >= high, deactivation requires sample < low.  A
        sample inside the hysteresis band can never change the state."""
        wm = self.make()
        was_active = wm.active
        for sample in samples:
            now_active = wm.update(sample)
            if now_active and not was_active:
                assert sample >= wm.high
            elif was_active and not now_active:
                assert sample < wm.low
            else:
                # unchanged state: the sample sat on the sticky side of
                # the band (no flap without a genuine crossing).
                if wm.low <= sample < wm.high:
                    assert now_active == was_active
            was_active = now_active

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=60),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_converges_to_static_thresholds_when_volatility_dies(
            self, burst, steady):
        """Any burst prefix, then a full window of one constant value:
        zero volatility must restore exactly the static 85/70 pair."""
        from repro.mem.watermarks import DynamicWatermarks

        wm = self.make()
        for sample in burst:
            wm.update(sample)
        for _ in range(DynamicWatermarks.WINDOW):
            wm.update(steady)
        assert wm.high == 0.85
        assert wm.low == 0.70

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=4, max_value=100))
    def test_constant_series_never_moves_thresholds(self, value, n):
        wm = self.make()
        for _ in range(n):
            wm.update(value)
        assert wm.high == 0.85
        assert wm.low == 0.70
