"""Unit tests for the workload framework (ops, phases, executor)."""

import pytest

from repro.patterns import Pattern
from repro.units import MB, PAGES_PER_HUGE, SEC
from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    MmapOp,
    Phase,
    RegionAccessSpec,
    SleepOp,
    TouchOp,
    Workload,
)


class ListWorkload(Workload):
    name = "listed"

    def __init__(self, phases):
        self._phases = phases

    def build_phases(self):
        return self._phases


def run_workload(kernel, phases, max_epochs=300):
    run = kernel.spawn(ListWorkload(phases))
    kernel.run(max_epochs=max_epochs)
    return run


class TestOps:
    def test_mmap_then_touch(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[MmapOp("heap", 4 * MB), TouchOp("heap")]),
        ])
        assert run.finished
        assert run.proc.rss_pages() == 1024

    def test_touch_stride_skips_pages(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[MmapOp("heap", 4 * MB), TouchOp("heap", stride_pages=4)]),
        ])
        assert run.proc.rss_pages() == 256

    def test_touch_content_written(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[
                MmapOp("heap", 1 * MB),
                TouchOp("heap", content=ContentSpec(first_nonzero=5)),
            ]),
        ])
        frame = run.proc.page_table.base[run.vma("heap").start].frame
        assert kernel4k.frames.first_nonzero[frame] == 5

    def test_touch_zero_content(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[
                MmapOp("heap", 1 * MB),
                TouchOp("heap", content=ContentSpec(zero=True)),
            ]),
        ])
        frame = run.proc.page_table.base[run.vma("heap").start].frame
        assert kernel4k.frames.is_zero(frame)

    def test_touch_rate_limit_paces_faults(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[
                MmapOp("heap", 4 * MB),
                TouchOp("heap", rate_pages_per_sec=256.0),
            ]),
        ], max_epochs=10)
        # 1024 pages at 256/s: takes about 4 seconds of simulated time
        assert run.elapsed_us == pytest.approx(4 * SEC, rel=0.5)

    def test_free_op_releases(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[
                MmapOp("heap", 4 * MB),
                TouchOp("heap"),
                FreeOp("heap", npages=512),
            ]),
        ])
        assert run.proc.rss_pages() == 512

    def test_sparse_free(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[
                MmapOp("heap", 4 * MB),
                TouchOp("heap"),
                FreeOp("heap", sparse_fraction=0.5, seed=3),
            ]),
        ])
        assert run.proc.rss_pages() == pytest.approx(512, rel=0.15)

    def test_sleep_op_consumes_wall_time(self, kernel4k):
        run = run_workload(kernel4k, [
            Phase("a", ops=[SleepOp(3 * SEC)]),
        ], max_epochs=10)
        assert run.elapsed_us == pytest.approx(3 * SEC, abs=1.1 * SEC)


class TestPhases:
    def test_work_and_duration_exclusive(self):
        with pytest.raises(ValueError):
            Phase("bad", work_us=1.0, duration_us=1.0)

    def test_work_retired_across_epochs(self, kernel4k):
        run = run_workload(kernel4k, [Phase("w", work_us=2.5 * SEC)], max_epochs=10)
        assert run.finished
        assert run.elapsed_us == pytest.approx(3 * SEC, abs=0.1 * SEC)

    def test_mmu_overhead_slows_progress(self, kernel4k):
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=512)], access_rate=30.0
        )
        phases = [
            Phase("alloc", ops=[MmapOp("heap", 16 * MB), TouchOp("heap")]),
            Phase("compute", work_us=10 * SEC, profile=profile),
        ]
        run = run_workload(kernel4k, phases, max_epochs=100)
        # at ~37% overhead, 10s of work takes ~16 wall seconds
        assert run.proc.mmu_overhead > 0.3
        assert run.elapsed_us > 14 * SEC

    def test_serving_counts_requests(self, kernel4k):
        phases = [
            Phase("serve", duration_us=5 * SEC,
                  request_rate=1000.0, request_cost_us=10.0),
        ]
        run = run_workload(kernel4k, phases, max_epochs=10)
        assert run.served["serve"] == pytest.approx(5000, rel=0.05)

    def test_serving_capacity_bound(self, kernel4k):
        phases = [
            Phase("serve", duration_us=2 * SEC,
                  request_rate=1e9, request_cost_us=100.0),
        ]
        run = run_workload(kernel4k, phases, max_epochs=10)
        # capacity = 10k requests/s
        assert run.served["serve"] == pytest.approx(20_000, rel=0.05)

    def test_multi_phase_progression(self, kernel4k):
        phases = [
            Phase("p1", ops=[MmapOp("a", 1 * MB), TouchOp("a")]),
            Phase("p2", work_us=1 * SEC),
            Phase("p3", ops=[MmapOp("b", 1 * MB), TouchOp("b")]),
        ]
        run = run_workload(kernel4k, phases, max_epochs=20)
        assert run.finished
        assert run.proc.rss_pages() == 512


class TestAccessProfile:
    def test_loads_reflect_promotion_state(self, kernel_thp):
        profile = AccessProfile(specs=[RegionAccessSpec("heap", coverage=256)])
        phases = [
            Phase("alloc", ops=[MmapOp("heap", 8 * MB), TouchOp("heap")]),
            Phase("c", work_us=100 * SEC, profile=profile),
        ]
        run = run_workload(kernel_thp, phases, max_epochs=3)
        loads = profile.loads(kernel_thp, run.proc)
        assert len(loads) == 1
        assert loads[0].touched_regions == 4
        assert loads[0].promoted_fraction == 1.0  # THP mapped everything huge

    def test_hot_range_selects_regions(self, kernel4k):
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", hot_start=0.5, hot_len=0.5)]
        )
        phases = [
            Phase("alloc", ops=[MmapOp("heap", 8 * MB), TouchOp("heap")]),
            Phase("c", work_us=100 * SEC, profile=profile),
        ]
        run = run_workload(kernel4k, phases, max_epochs=3)
        vma = run.vma("heap")
        coverage = profile.region_coverage(kernel4k, run.proc)
        assert len(coverage) == 2  # upper half of 4 regions
        assert min(coverage) >= (vma.start >> 9) + 2

    def test_missing_region_ignored(self, kernel4k):
        profile = AccessProfile(specs=[RegionAccessSpec("nope")])
        from repro.vm.process import Process

        proc = Process("x")
        assert profile.loads(kernel4k, proc) == []
        assert profile.region_coverage(kernel4k, proc) == {}
