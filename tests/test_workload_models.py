"""Tests for the calibrated workload models (NPB, Graph500, Redis, ...)."""

import pytest

from repro.experiments import Scale, make_kernel
from repro.units import GB, SEC
from repro.workloads.graph import Graph500, PageRank
from repro.workloads.haccio import HaccIO
from repro.workloads.microbench import AllocTouchFree, RandomAccess, SequentialAccess
from repro.workloads.npb import NPB_SPECS, NPBWorkload
from repro.workloads.redis import RedisBulkInsert, RedisChurn, RedisFig1, RedisLight
from repro.workloads.sparsehash import SparseHash
from repro.workloads.spinup import JVMSpinUp, KVMSpinUp
from repro.workloads.xsbench import XSBench

SCALE = Scale(1 / 256)


def steady_overhead(workload, mem_gb=48, policy="linux-4kb", epochs=40):
    kernel = make_kernel(mem_gb * GB, policy, SCALE)
    run = kernel.spawn(workload)
    kernel.run_epochs(epochs)
    return run.proc.mmu_overhead


@pytest.mark.parametrize("which", sorted(NPB_SPECS))
def test_npb_4k_overheads_match_table3(which):
    spec = NPB_SPECS[which]
    wl = NPBWorkload(which, scale=SCALE.factor, work_us=1000 * SEC)
    overhead = steady_overhead(wl, mem_gb=96)
    assert overhead == pytest.approx(spec.paper_overhead_4k, abs=max(0.02, spec.paper_overhead_4k * 0.35)), which


def test_npb_2m_overheads_near_zero():
    wl = NPBWorkload("cg.D", scale=SCALE.factor, work_us=1000 * SEC)
    overhead = steady_overhead(wl, mem_gb=96, policy="linux-2mb")
    assert overhead < 0.05


def test_graph500_xsbench_overheads():
    # calibration targets hold at the default experiment scale (1/64);
    # smaller scales shrink TLB demand and with it the miss fraction
    scale = Scale(1 / 64)

    def overhead(wl):
        kernel = make_kernel(48 * GB, "linux-4kb", scale)
        run = kernel.spawn(wl)
        kernel.run_epochs(30)
        return run.proc.mmu_overhead

    assert overhead(Graph500(scale=scale.factor, work_us=900 * SEC)) == pytest.approx(0.13, abs=0.03)
    assert overhead(XSBench(scale=scale.factor, work_us=900 * SEC)) == pytest.approx(0.15, abs=0.03)


def test_hot_regions_in_high_vas():
    """Figure 6: Graph500/XSBench hot-spots live in high VAs."""
    for wl in (Graph500(scale=SCALE.factor), XSBench(scale=SCALE.factor)):
        spec = wl.profile.specs[0]
        assert spec.hot_start >= 0.5


def test_table9_random_vs_sequential():
    """Same coverage, opposite measured overheads (Table 9)."""
    random_oh = steady_overhead(RandomAccess(scale=SCALE.factor, work_us=900 * SEC), mem_gb=16)
    seq_oh = steady_overhead(SequentialAccess(scale=SCALE.factor, work_us=900 * SEC), mem_gb=16)
    assert random_oh == pytest.approx(0.60, abs=0.08)
    assert seq_oh < 0.01


def test_alloc_touch_free_round_counts():
    kernel = make_kernel(16 * GB, "linux-4kb", SCALE)
    wl = AllocTouchFree(buffer_bytes=1 * GB, rounds=3, scale=SCALE.factor)
    run = kernel.spawn(wl)
    kernel.run(max_epochs=100)
    pages_per_round = SCALE.bytes(1 * GB) // 4096
    assert run.proc.stats.faults == 3 * pages_per_round
    assert run.proc.rss_pages() == 0  # everything freed


def test_redis_fig1_phases_shape():
    wl = RedisFig1(scale=SCALE.factor)
    names = [p.name for p in wl.build_phases()]
    assert names == ["P1-insert", "P2-delete", "gap", "P3-reinsert", "steady"]


def test_redis_churn_serving_profile_overhead():
    wl = RedisChurn(scale=SCALE.factor)
    profile = wl.serving_profile()
    from repro.tlb.mmu_model import MMUModel

    loads = [
        __import__("repro.tlb.mmu_model", fromlist=["RegionLoad"]).RegionLoad(
            2000, float(profile.specs[0].coverage), 0.0, 1.0
        )
    ]
    overhead = MMUModel().epoch(loads, profile.access_rate).overhead
    # Table 7: ~7% throughput gap between 4K and 2M serving
    assert overhead == pytest.approx(0.068, abs=0.02)


def test_bulk_insert_value_count():
    wl = RedisBulkInsert(scale=1.0, dataset_bytes=4 * GB)
    assert wl.values_inserted() == 2048


def test_spinup_memory_stays_zero():
    kernel = make_kernel(96 * GB, "linux-2mb", SCALE)
    run = kernel.spawn(KVMSpinUp(scale=SCALE.factor))
    kernel.run(max_epochs=200)
    assert run.finished
    proc = run.proc
    vma = run.vma("guest-ram")
    frame, _ = proc.page_table.translate(vma.start)
    assert kernel.frames.is_zero(frame)


def test_workload_names_unique():
    names = [
        RedisFig1().name, RedisChurn().name, RedisBulkInsert().name,
        RedisLight().name, Graph500().name, XSBench().name, PageRank().name,
        SparseHash().name, HaccIO().name, KVMSpinUp().name, JVMSpinUp().name,
    ]
    assert len(set(names)) == len(names)
