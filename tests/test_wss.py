"""Tests for the WSS estimator and the §2.4 claim it exists to test."""

import pytest

from repro.core.wss import WSSEstimator, wss_overhead_belief
from repro.experiments import Scale, make_kernel
from repro.units import GB, SEC
from repro.workloads.microbench import RandomAccess, SequentialAccess
from repro.workloads.npb import NPBWorkload

SCALE = Scale(1 / 128)


def run_pair(w1, w2):
    kernel = make_kernel(96 * GB, "linux-4kb", SCALE)
    r1, r2 = kernel.spawn(w1), kernel.spawn(w2)
    kernel.run_epochs(65)  # two access-bit sampling rounds
    return kernel, r1.proc, r2.proc


def test_wss_tracks_sampled_coverage():
    kernel, cg, _ = run_pair(
        NPBWorkload("cg.D", scale=SCALE.factor, work_us=1000 * SEC),
        NPBWorkload("mg.D", scale=SCALE.factor, work_us=1000 * SEC),
    )
    estimator = WSSEstimator(kernel)
    # cg.D's hot region is ~47% of its 16 GB footprint
    assert estimator.wss_bytes(cg) > 0.2 * SCALE.bytes(16 * GB)


def test_wss_misranks_mgd_vs_cgd():
    """§2.4: mg.D has the larger WSS but ~40x lower real overhead."""
    kernel, cg, mg = run_pair(
        NPBWorkload("cg.D", scale=SCALE.factor, work_us=1000 * SEC),
        NPBWorkload("mg.D", scale=SCALE.factor, work_us=1000 * SEC),
    )
    estimator = WSSEstimator(kernel)
    assert estimator.wss_pages(mg) > estimator.wss_pages(cg), \
        "mg.D's working set is larger"
    # naive belief follows WSS...
    assert wss_overhead_belief(kernel, mg) >= wss_overhead_belief(kernel, cg)
    # ...but ground truth is the other way around
    assert mg.mmu_overhead < cg.mmu_overhead / 10


def test_wss_blind_to_pattern():
    """Table 9's pair: identical coverage, so identical WSS belief,
    despite a 60x real-overhead difference."""
    kernel, rand, seq = run_pair(
        RandomAccess(scale=SCALE.factor, work_us=1000 * SEC),
        SequentialAccess(scale=SCALE.factor, work_us=1000 * SEC),
    )
    belief_rand = wss_overhead_belief(kernel, rand)
    belief_seq = wss_overhead_belief(kernel, seq)
    assert belief_rand == pytest.approx(belief_seq, rel=0.05)
    assert seq.mmu_overhead < rand.mmu_overhead / 20


def test_belief_zero_within_tlb_reach():
    kernel = make_kernel(96 * GB, "linux-4kb", SCALE)
    from repro.vm.process import Process

    idle = Process("idle")
    assert wss_overhead_belief(kernel, idle) == 0.0


def test_wss_vectorized_matches_scalar_exactly():
    """The column-array gather must be bit-identical to the proxy sum.

    Same values, same sequential addition order — ``==``, not approx.
    """
    kernel, rand, seq = run_pair(
        RandomAccess(scale=SCALE.factor, work_us=1000 * SEC),
        SequentialAccess(scale=SCALE.factor, work_us=1000 * SEC),
    )
    estimator = WSSEstimator(kernel)
    for proc in (rand, seq):
        assert kernel.vectorized
        fast = estimator.wss_pages(proc)
        kernel.vectorized = False
        try:
            slow = estimator.wss_pages(proc)
        finally:
            kernel.vectorized = True
        assert fast == slow
        assert fast > 0
