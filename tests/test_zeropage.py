"""Unit tests for the canonical zero-page registry."""

import pytest

from repro.mem.zeropage import ZeroPageRegistry


def test_share_unshare_accounting():
    reg = ZeroPageRegistry(zero_frame=7)
    reg.share(3)
    assert reg.mappings == 3
    assert reg.dedups == 3
    assert reg.pages_saved() == 3
    reg.unshare(2)
    assert reg.mappings == 1
    assert reg.dedups == 3, "dedups is a lifetime counter"


def test_unshare_more_than_shared_rejected():
    reg = ZeroPageRegistry(0)
    reg.share()
    with pytest.raises(ValueError):
        reg.unshare(2)


def test_cow_break_counts_fault():
    """Paper §3.2: writes to deduplicated zero pages cost a COW fault."""
    reg = ZeroPageRegistry(0)
    reg.share(2)
    reg.cow_break()
    assert reg.mappings == 1
    assert reg.cow_faults == 1
